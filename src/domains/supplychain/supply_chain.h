// Supply-chain provenance (§4.2): the registry + custody machinery of Cui
// et al. [23] (unique device ids, confirmation-based ownership transfer to
// prevent theft/human error), Kumar et al. [42] (cold-chain sensor
// monitoring with alert thresholds), PrivChain [52] (ZK range proofs in
// place of raw sensitive readings, with automated incentives), and Islam et
// al. [38] (PUF-authenticated parts via domains/supplychain/puf.h).
//
// Every action anchors a Table 1 supply-chain record on the ledger.
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_DOMAINS_SUPPLYCHAIN_SUPPLY_CHAIN_H_
#define PROVLEDGER_DOMAINS_SUPPLYCHAIN_SUPPLY_CHAIN_H_

#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/pedersen.h"
#include "prov/store.h"

namespace provledger {
namespace supplychain {

/// \brief Registered product state.
struct Product {
  std::string product_id;
  std::string product_type;
  std::string batch;
  std::string manufacturer;
  std::string expiry;
  std::string owner;
  /// Pending two-phase transfer target (confirmation-based transfer).
  std::optional<std::string> pending_transfer_to;
  /// Accumulated travel trace ("factory>dc>pharmacy").
  std::string trace;
  bool recalled = false;
};

/// \brief Cold-chain alert raised by an out-of-range reading.
struct ColdChainAlert {
  std::string product_id;
  std::string sensor;
  int64_t reading;
  int64_t low;
  int64_t high;
  Timestamp at;
};

/// \brief Supply-chain manager over a ProvenanceStore.
class SupplyChain {
 public:
  SupplyChain(prov::ProvenanceStore* store, Clock* clock);

  /// \name Legitimate registration (a §4.6 challenge).
  /// @{
  /// Only accredited manufacturers may register products.
  void AccreditManufacturer(const std::string& manufacturer);
  Status RegisterProduct(const std::string& product_id,
                         const std::string& product_type,
                         const std::string& batch,
                         const std::string& manufacturer,
                         const std::string& expiry);
  /// @}

  /// \name Confirmation-based ownership transfer (Cui et al.).
  /// @{
  /// Phase 1: the current owner offers the product to `to`.
  Status InitiateTransfer(const std::string& product_id,
                          const std::string& from, const std::string& to);
  /// Phase 2: the recipient confirms, completing custody transfer.
  Status ConfirmTransfer(const std::string& product_id,
                         const std::string& to);
  /// Either side may cancel a pending transfer.
  Status CancelTransfer(const std::string& product_id,
                        const std::string& who);
  /// @}

  /// \name Cold chain (Kumar et al.).
  /// @{
  /// Set the acceptable sensor range for a product (e.g. 2..8 °C).
  Status SetColdChainRange(const std::string& product_id, int64_t low,
                           int64_t high);
  /// Record a sensor reading on-ledger; out-of-range raises an alert.
  Status RecordSensorReading(const std::string& product_id,
                             const std::string& sensor, int64_t reading);
  const std::vector<ColdChainAlert>& alerts() const { return alerts_; }
  /// @}

  /// \name PrivChain private disclosure.
  /// @{
  /// Anchor a ZK interval proof that the (hidden) reading was in range,
  /// instead of the reading itself. Returns the anchored record id.
  Result<std::string> RecordPrivateReading(const std::string& product_id,
                                           const std::string& sensor,
                                           int64_t reading, int64_t low,
                                           int64_t high);
  /// Verify an anchored private reading (re-checks the stored proof).
  Status VerifyPrivateReading(const std::string& record_id);
  /// @}

  /// Recall a product (e.g. counterfeit detection downstream).
  Status Recall(const std::string& product_id, const std::string& reason);

  Result<Product> GetProduct(const std::string& product_id) const;
  /// Complete custody/event history from the ledger.
  std::vector<prov::ProvenanceRecord> History(
      const std::string& product_id) const;
  /// Just the two-phase custody transfer events (operation-filtered).
  std::vector<prov::ProvenanceRecord> TransferHistory(
      const std::string& product_id) const;
  /// Cold-chain readings for a product inside a time window (subject index
  /// narrowed by timestamp, then operation-filtered).
  std::vector<prov::ProvenanceRecord> SensorHistory(
      const std::string& product_id, Timestamp from,
      Timestamp to = std::numeric_limits<Timestamp>::max()) const;
  /// True iff the claimed product exists, is not recalled, and the claimed
  /// holder matches on-ledger custody (counterfeit check).
  bool VerifyAuthenticity(const std::string& product_id,
                          const std::string& claimed_holder) const;

  size_t product_count() const { return products_.size(); }

 private:
  Status AnchorEvent(const Product& product, const std::string& operation,
                     const std::string& agent,
                     std::map<std::string, std::string> extra = {});
  std::string NextRecordId();

  prov::ProvenanceStore* store_;
  Clock* clock_;
  std::set<std::string> manufacturers_;
  std::map<std::string, Product> products_;
  std::map<std::string, std::pair<int64_t, int64_t>> cold_ranges_;
  std::vector<ColdChainAlert> alerts_;
  // record id -> serialized interval proof (off-chain proof store; the
  // ledger holds the record + proof hash).
  std::map<std::string, crypto::Zkrp::IntervalProof> proofs_;
  uint64_t seq_ = 0;
};

}  // namespace supplychain
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_SUPPLYCHAIN_SUPPLY_CHAIN_H_
