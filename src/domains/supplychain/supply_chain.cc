#include "domains/supplychain/supply_chain.h"

namespace provledger {
namespace supplychain {

SupplyChain::SupplyChain(prov::ProvenanceStore* store, Clock* clock)
    : store_(store), clock_(clock) {}

std::string SupplyChain::NextRecordId() {
  return "sc-rec-" + std::to_string(++seq_);
}

Status SupplyChain::AnchorEvent(const Product& product,
                                const std::string& operation,
                                const std::string& agent,
                                std::map<std::string, std::string> extra) {
  prov::ProvenanceRecord rec = prov::MakeSupplyChainRecord(
      NextRecordId(), operation, product.product_id, agent,
      clock_->NowMicros(), product.batch, product.expiry, product.trace,
      product.product_type, product.manufacturer,
      "qr://" + product.product_id);
  for (auto& [key, value] : extra) rec.fields[key] = std::move(value);
  return store_->Anchor(rec);
}

void SupplyChain::AccreditManufacturer(const std::string& manufacturer) {
  manufacturers_.insert(manufacturer);
}

Status SupplyChain::RegisterProduct(const std::string& product_id,
                                    const std::string& product_type,
                                    const std::string& batch,
                                    const std::string& manufacturer,
                                    const std::string& expiry) {
  // Illegitimate product registration (§4.6): only accredited
  // manufacturers can mint product identities.
  if (!manufacturers_.count(manufacturer)) {
    return Status::PermissionDenied("manufacturer not accredited: " +
                                    manufacturer);
  }
  if (products_.count(product_id)) {
    return Status::AlreadyExists("product already registered: " + product_id);
  }
  Product product;
  product.product_id = product_id;
  product.product_type = product_type;
  product.batch = batch;
  product.manufacturer = manufacturer;
  product.expiry = expiry;
  product.owner = manufacturer;
  product.trace = manufacturer;
  PROVLEDGER_RETURN_NOT_OK(AnchorEvent(product, "register", manufacturer));
  products_.emplace(product_id, std::move(product));
  return Status::OK();
}

Status SupplyChain::InitiateTransfer(const std::string& product_id,
                                     const std::string& from,
                                     const std::string& to) {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  Product& product = it->second;
  if (product.recalled) {
    return Status::FailedPrecondition("product recalled: " + product_id);
  }
  if (product.owner != from) {
    return Status::PermissionDenied(from + " does not own " + product_id);
  }
  if (product.pending_transfer_to.has_value()) {
    return Status::FailedPrecondition("transfer already pending");
  }
  product.pending_transfer_to = to;
  return AnchorEvent(product, "transfer-initiate", from,
                     {{"transfer_to", to}});
}

Status SupplyChain::ConfirmTransfer(const std::string& product_id,
                                    const std::string& to) {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  Product& product = it->second;
  if (!product.pending_transfer_to.has_value()) {
    return Status::FailedPrecondition("no pending transfer");
  }
  // The confirmation step is what prevents theft and mis-shipment (Cui et
  // al.): only the named recipient can complete custody.
  if (*product.pending_transfer_to != to) {
    return Status::PermissionDenied("transfer is not addressed to " + to);
  }
  product.owner = to;
  product.pending_transfer_to.reset();
  product.trace += ">" + to;
  return AnchorEvent(product, "transfer-confirm", to);
}

Status SupplyChain::CancelTransfer(const std::string& product_id,
                                   const std::string& who) {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  Product& product = it->second;
  if (!product.pending_transfer_to.has_value()) {
    return Status::FailedPrecondition("no pending transfer");
  }
  if (who != product.owner && who != *product.pending_transfer_to) {
    return Status::PermissionDenied(
        "only the owner or recipient may cancel the transfer");
  }
  product.pending_transfer_to.reset();
  return AnchorEvent(product, "transfer-cancel", who);
}

Status SupplyChain::SetColdChainRange(const std::string& product_id,
                                      int64_t low, int64_t high) {
  if (low > high) return Status::InvalidArgument("low > high");
  if (!products_.count(product_id)) {
    return Status::NotFound("no such product: " + product_id);
  }
  cold_ranges_[product_id] = {low, high};
  return Status::OK();
}

Status SupplyChain::RecordSensorReading(const std::string& product_id,
                                        const std::string& sensor,
                                        int64_t reading) {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  auto range_it = cold_ranges_.find(product_id);
  if (range_it == cold_ranges_.end()) {
    return Status::FailedPrecondition("no cold-chain range configured");
  }
  const auto [low, high] = range_it->second;
  bool in_range = reading >= low && reading <= high;
  PROVLEDGER_RETURN_NOT_OK(AnchorEvent(
      it->second, "sensor-reading", sensor,
      {{"reading", std::to_string(reading)},
       {"in_range", in_range ? "true" : "false"}}));
  if (!in_range) {
    alerts_.push_back(ColdChainAlert{product_id, sensor, reading, low, high,
                                     clock_->NowMicros()});
  }
  return Status::OK();
}

Result<std::string> SupplyChain::RecordPrivateReading(
    const std::string& product_id, const std::string& sensor, int64_t reading,
    int64_t low, int64_t high) {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  if (reading < 0 || low < 0 || high < 0) {
    return Status::InvalidArgument("private readings must be non-negative");
  }
  // Commit to the reading, prove it lies in [low, high] without revealing
  // it (PrivChain's ZKRP pattern).
  const std::string record_id = NextRecordId();
  crypto::U256 blinding = crypto::U256::FromBytesBE(
      crypto::Sha256::Hash("blind/" + record_id).data());
  PROVLEDGER_ASSIGN_OR_RETURN(
      crypto::Zkrp::IntervalProof proof,
      crypto::Zkrp::ProveInterval(static_cast<uint64_t>(reading),
                                  static_cast<uint64_t>(low),
                                  static_cast<uint64_t>(high), blinding,
                                  /*bits=*/16, ToBytes(record_id)));

  // The ledger record carries the commitment and the proof's hash; the
  // proof body stays off-chain (PrivChain's "offline computation of
  // proofs reduces blockchain overhead").
  Product& product = it->second;
  prov::ProvenanceRecord rec = prov::MakeSupplyChainRecord(
      record_id, "private-sensor-proof", product.product_id, sensor,
      clock_->NowMicros(), product.batch, product.expiry, product.trace,
      product.product_type, product.manufacturer,
      "qr://" + product.product_id);
  rec.fields["commitment"] =
      HexEncode(proof.value_commitment.EncodeCompressed());
  rec.fields["range"] =
      std::to_string(low) + ".." + std::to_string(high);
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(rec));
  proofs_.emplace(record_id, std::move(proof));
  return record_id;
}

Status SupplyChain::VerifyPrivateReading(const std::string& record_id) {
  auto proof_it = proofs_.find(record_id);
  if (proof_it == proofs_.end()) {
    return Status::NotFound("no proof stored for record: " + record_id);
  }
  PROVLEDGER_ASSIGN_OR_RETURN(prov::ProvenanceRecord rec,
                              store_->GetRecord(record_id));
  // The on-ledger commitment must match the off-chain proof...
  if (rec.fields.at("commitment") !=
      HexEncode(proof_it->second.value_commitment.EncodeCompressed())) {
    return Status::Corruption("commitment mismatch for " + record_id);
  }
  // ...and the proof itself must verify.
  if (!crypto::Zkrp::VerifyInterval(proof_it->second)) {
    return Status::Unauthenticated("interval proof failed for " + record_id);
  }
  return Status::OK();
}

Status SupplyChain::Recall(const std::string& product_id,
                           const std::string& reason) {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  it->second.recalled = true;
  return AnchorEvent(it->second, "recall", it->second.manufacturer,
                     {{"reason", reason}});
}

Result<Product> SupplyChain::GetProduct(const std::string& product_id) const {
  auto it = products_.find(product_id);
  if (it == products_.end()) {
    return Status::NotFound("no such product: " + product_id);
  }
  return it->second;
}

std::vector<prov::ProvenanceRecord> SupplyChain::History(
    const std::string& product_id) const {
  return store_->Execute(prov::Query().WithSubject(product_id)).records;
}

std::vector<prov::ProvenanceRecord> SupplyChain::TransferHistory(
    const std::string& product_id) const {
  return store_
      ->Execute(prov::Query()
                    .WithSubject(product_id)
                    .WithOperation("transfer-initiate")
                    .WithOperation("transfer-confirm")
                    .WithOperation("transfer-cancel"))
      .records;
}

std::vector<prov::ProvenanceRecord> SupplyChain::SensorHistory(
    const std::string& product_id, Timestamp from, Timestamp to) const {
  return store_
      ->Execute(prov::Query()
                    .WithSubject(product_id)
                    .WithOperation("sensor-reading")
                    .Between(from, to))
      .records;
}

bool SupplyChain::VerifyAuthenticity(const std::string& product_id,
                                     const std::string& claimed_holder) const {
  auto it = products_.find(product_id);
  if (it == products_.end()) return false;  // unknown id => counterfeit
  if (it->second.recalled) return false;
  return it->second.owner == claimed_holder;
}

}  // namespace supplychain
}  // namespace provledger
