// Physically Unclonable Function simulation (Islam et al. [38]).
//
// A real PUF derives a device-unique response from silicon variation; an
// adversary without the physical device cannot answer fresh challenges.
// Our substitute (DESIGN.md §3) is a keyed challenge-response oracle:
// response = HMAC(device_secret, challenge). The verifier enrolls a set of
// challenge-response pairs (CRPs) while it briefly trusts the device, then
// authenticates later by replaying an unused challenge — exactly the
// enrollment/authentication protocol the paper's supply-chain section
// describes, with the same unclonability *property* (the secret never
// leaves the device object).
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_DOMAINS_SUPPLYCHAIN_PUF_H_
#define PROVLEDGER_DOMAINS_SUPPLYCHAIN_PUF_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace provledger {
namespace supplychain {

/// \brief The device side: holds the secret, answers challenges.
class PufDevice {
 public:
  /// Manufacture a device with an intrinsic (random) secret.
  explicit PufDevice(const std::string& device_id, const Bytes& intrinsic);

  const std::string& device_id() const { return device_id_; }
  /// The PUF response to a challenge.
  Bytes Respond(const Bytes& challenge) const;

 private:
  std::string device_id_;
  Bytes secret_;
};

/// \brief The verifier side: enrolls CRPs, authenticates devices later.
class PufVerifier {
 public:
  /// Enroll `count` challenge-response pairs from a trusted device.
  /// Challenges are drawn deterministically from `seed`.
  Status Enroll(const PufDevice& device, size_t count, uint64_t seed);

  /// Authenticate: pop an unused CRP and check the device's response.
  /// Each CRP is single-use (replay resistance).
  Status Authenticate(const std::string& device_id,
                      const std::function<Bytes(const Bytes&)>& responder);

  size_t RemainingCrps(const std::string& device_id) const;

 private:
  struct Crp {
    Bytes challenge;
    Bytes response;
  };
  std::map<std::string, std::vector<Crp>> crps_;
};

}  // namespace supplychain
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_SUPPLYCHAIN_PUF_H_
