#include "domains/forensics/case_manager.h"

#include <cassert>

namespace provledger {
namespace forensics {

namespace {
// The default gate matrix is built against the freshly constructed
// StageGate over ForensicStages(): every stage named below exists, so the
// grants are infallible by construction — a failure is a programming
// error, not a runtime condition.
void MustOk(const Status& status) {
  assert(status.ok());
  (void)status;  // assert compiles out under NDEBUG
}
}  // namespace

const std::vector<std::string>& ForensicStages() {
  static const std::vector<std::string> kStages = {
      "identification", "preservation", "collection", "analysis",
      "reporting"};
  return kStages;
}

CaseManager::CaseManager(prov::ProvenanceStore* store,
                         storage::ContentStore* content, Clock* clock)
    : store_(store), content_(content), clock_(clock),
      gate_(ForensicStages()) {
  // Default gate matrix (ForensiBlock: privileges follow the stage).
  MustOk(gate_.AllowInStage("identification", "investigator", "identify"));
  MustOk(gate_.AllowInStage("preservation", "investigator", "collect"));
  MustOk(gate_.AllowInStage("collection", "investigator", "collect"));
  MustOk(gate_.AllowInStage("collection", "investigator", "duplicate"));
  MustOk(gate_.AllowInStage("analysis", "analyst", "analyze"));
  MustOk(gate_.AllowInStage("analysis", "analyst", "duplicate"));
  MustOk(gate_.AllowInStage("reporting", "lead", "report"));
  for (const auto& stage : ForensicStages()) {
    MustOk(gate_.AllowTransition(stage, "lead"));
  }
}

Status CaseManager::Anchor(const std::string& case_id,
                           const std::string& subject,
                           const std::string& operation,
                           const std::string& actor,
                           std::map<std::string, std::string> extra) {
  auto case_it = cases_.find(case_id);
  if (case_it == cases_.end()) {
    return Status::NotFound("no such case: " + case_id);
  }
  auto stage = gate_.CurrentStage(case_id);
  prov::ProvenanceRecord rec = prov::MakeForensicsRecord(
      "df-" + std::to_string(++seq_), operation, subject, actor,
      clock_->NowMicros(), case_id,
      stage.ok() ? stage.value() : "complete", case_it->second.start_date,
      case_it->second.closure_date,
      extra.count("file_type") ? extra.at("file_type") : "",
      extra.count("access") ? extra.at("access") : operation,
      extra.count("dependency") ? extra.at("dependency") : "");
  for (auto& [key, value] : extra) rec.fields[key] = std::move(value);
  return store_->Anchor(rec);
}

Status CaseManager::OpenCase(const std::string& case_id,
                             const std::string& lead,
                             const std::string& start_date) {
  if (cases_.count(case_id)) {
    return Status::AlreadyExists("case already open: " + case_id);
  }
  PROVLEDGER_RETURN_NOT_OK(gate_.StartProcess(case_id));
  Case c;
  c.case_id = case_id;
  c.lead = lead;
  c.start_date = start_date;
  cases_.emplace(case_id, std::move(c));
  return Anchor(case_id, case_id, "open-case", lead);
}

Status CaseManager::AdvanceStage(const std::string& case_id,
                                 const std::string& actor) {
  auto it = cases_.find(case_id);
  if (it == cases_.end()) {
    return Status::NotFound("no such case: " + case_id);
  }
  if (it->second.lead != actor) {
    return Status::PermissionDenied("only the case lead may advance stages");
  }
  PROVLEDGER_RETURN_NOT_OK(
      gate_.Advance(case_id, actor, "lead", clock_->NowMicros()));
  if (gate_.IsComplete(case_id)) {
    return Status::OK();  // closure is recorded by FileReport
  }
  return Anchor(case_id, case_id, "advance-stage", actor);
}

Result<std::string> CaseManager::CurrentStage(
    const std::string& case_id) const {
  return gate_.CurrentStage(case_id);
}

Status CaseManager::IdentifySource(const std::string& case_id,
                                   const std::string& source,
                                   const std::string& actor) {
  if (!gate_.Check(case_id, "investigator", "identify")) {
    return Status::PermissionDenied(
        "identify not allowed in the current stage");
  }
  return Anchor(case_id, source, "identify-source", actor);
}

Bytes CaseManager::EvidenceLeaf(const Evidence& evidence) const {
  Encoder enc;
  enc.PutString(evidence.case_id);
  enc.PutString(evidence.evidence_id);
  enc.PutRaw(crypto::DigestToBytes(evidence.content_hash));
  return enc.TakeBuffer();
}

Status CaseManager::CollectEvidence(const std::string& case_id,
                                    const std::string& evidence_id,
                                    const std::string& file_type,
                                    const Bytes& content,
                                    const std::string& actor) {
  auto case_it = cases_.find(case_id);
  if (case_it == cases_.end()) {
    return Status::NotFound("no such case: " + case_id);
  }
  if (!gate_.Check(case_id, "investigator", "collect")) {
    return Status::PermissionDenied(
        "collect not allowed in the current stage");
  }
  const std::string key = EvKey(case_id, evidence_id);
  if (evidence_.count(key)) {
    return Status::AlreadyExists("evidence already collected: " + key);
  }

  Evidence ev;
  ev.evidence_id = evidence_id;
  ev.case_id = case_id;
  ev.file_type = file_type;
  ev.content_hash = content_->Put(content);  // preserve ESI off-chain
  ev.custodian = actor;
  ev.custody_chain.push_back(actor);
  ev.forest_index = forest_.Append(case_id, EvidenceLeaf(ev));

  PROVLEDGER_RETURN_NOT_OK(
      Anchor(case_id, evidence_id, "collect-evidence", actor,
             {{"file_type", file_type},
              {"content_hash", crypto::DigestHex(ev.content_hash)}}));
  evidence_.emplace(key, std::move(ev));
  case_it->second.evidence_ids.push_back(evidence_id);
  return Status::OK();
}

Result<std::string> CaseManager::DuplicateEvidence(
    const std::string& case_id, const std::string& evidence_id,
    const std::string& actor) {
  auto it = evidence_.find(EvKey(case_id, evidence_id));
  if (it == evidence_.end()) {
    return Status::NotFound("no such evidence: " + evidence_id);
  }
  auto stage = gate_.CurrentStage(case_id);
  const std::string role =
      (stage.ok() && stage.value() == "analysis") ? "analyst"
                                                  : "investigator";
  if (!gate_.Check(case_id, role, "duplicate")) {
    return Status::PermissionDenied(
        "duplicate not allowed in the current stage");
  }
  // "Exact duplicates for detailed analysis": fetch with verification so a
  // corrupted original can never silently become the working copy.
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes original,
                              content_->GetVerified(it->second.content_hash));
  crypto::Digest copy_cid = content_->Put(original);
  const std::string dup_id = evidence_id + "-dup";
  PROVLEDGER_RETURN_NOT_OK(Anchor(
      case_id, dup_id, "duplicate-evidence", actor,
      {{"dependency", evidence_id},
       {"content_hash", crypto::DigestHex(copy_cid)}}));
  return dup_id;
}

Status CaseManager::AnalyzeEvidence(const std::string& case_id,
                                    const std::string& evidence_id,
                                    const std::string& finding,
                                    const std::string& actor) {
  if (!evidence_.count(EvKey(case_id, evidence_id))) {
    return Status::NotFound("no such evidence: " + evidence_id);
  }
  if (!gate_.Check(case_id, "analyst", "analyze")) {
    return Status::PermissionDenied(
        "analyze not allowed in the current stage");
  }
  return Anchor(case_id, evidence_id, "analyze-evidence", actor,
                {{"finding", finding}, {"dependency", evidence_id}});
}

Status CaseManager::FileReport(const std::string& case_id,
                               const std::string& summary,
                               const std::string& actor,
                               const std::string& closure_date) {
  auto it = cases_.find(case_id);
  if (it == cases_.end()) {
    return Status::NotFound("no such case: " + case_id);
  }
  if (!gate_.Check(case_id, "lead", "report")) {
    return Status::PermissionDenied("report not allowed in current stage");
  }
  it->second.closure_date = closure_date;
  std::string dependencies;
  for (const auto& ev : it->second.evidence_ids) {
    if (!dependencies.empty()) dependencies += ",";
    dependencies += ev;
  }
  return Anchor(case_id, case_id, "file-report", actor,
                {{"summary", summary}, {"dependency", dependencies}});
}

Status CaseManager::TransferCustody(const std::string& case_id,
                                    const std::string& evidence_id,
                                    const std::string& from,
                                    const std::string& to) {
  auto it = evidence_.find(EvKey(case_id, evidence_id));
  if (it == evidence_.end()) {
    return Status::NotFound("no such evidence: " + evidence_id);
  }
  if (it->second.custodian != from) {
    return Status::PermissionDenied(from + " is not the custodian of " +
                                    evidence_id);
  }
  it->second.custodian = to;
  it->second.custody_chain.push_back(to);
  return Anchor(case_id, evidence_id, "transfer-custody", from,
                {{"to", to}, {"dependency", evidence_id}});
}

Result<Evidence> CaseManager::GetEvidence(const std::string& case_id,
                                          const std::string& evidence_id) const {
  auto it = evidence_.find(EvKey(case_id, evidence_id));
  if (it == evidence_.end()) {
    return Status::NotFound("no such evidence: " + evidence_id);
  }
  return it->second;
}

Result<Case> CaseManager::GetCase(const std::string& case_id) const {
  auto it = cases_.find(case_id);
  if (it == cases_.end()) {
    return Status::NotFound("no such case: " + case_id);
  }
  return it->second;
}

std::vector<prov::ProvenanceRecord> CaseManager::EvidenceHistory(
    const std::string& case_id, const std::string& evidence_id) const {
  return store_
      ->Execute(prov::Query()
                    .WithSubject(evidence_id)
                    .WithField(prov::fields::kCaseNumber, case_id))
      .records;
}

std::vector<prov::ProvenanceRecord> CaseManager::CaseActivity(
    const std::string& case_id, const std::string& operation) const {
  prov::Query query;
  query.WithDomain(prov::Domain::kForensics)
      .WithField(prov::fields::kCaseNumber, case_id);
  if (!operation.empty()) query.WithOperation(operation);
  return store_->Execute(query).records;
}

Result<crypto::Digest> CaseManager::CaseRoot(
    const std::string& case_id) const {
  return forest_.PartitionRoot(case_id);
}

Status CaseManager::VerifyEvidence(const std::string& case_id,
                                   const std::string& evidence_id) const {
  auto it = evidence_.find(EvKey(case_id, evidence_id));
  if (it == evidence_.end()) {
    return Status::NotFound("no such evidence: " + evidence_id);
  }
  const Evidence& ev = it->second;
  // Content-level integrity.
  PROVLEDGER_RETURN_NOT_OK(content_->GetVerified(ev.content_hash).status());
  // Membership in the case's Merkle partition, up to the forest root.
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::ForestProof proof,
                              forest_.Prove(case_id, ev.forest_index));
  if (!crypto::MerkleForest::Verify(forest_.ForestRoot(), EvidenceLeaf(ev),
                                    proof)) {
    return Status::Corruption("evidence failed forest verification: " +
                              evidence_id);
  }
  return Status::OK();
}

}  // namespace forensics
}  // namespace provledger
