// Digital-forensics provenance (§4.5, Figure 5; ForensiBlock [12]):
// investigation cases walk the five-stage methodology — identification,
// preservation, collection, analysis, reporting — with
//   * stage-scoped access control (access/stage_gate.h),
//   * evidence preserved off-chain by content hash with exact duplicates,
//   * an explicit chain of custody per evidence item,
//   * per-case distributed Merkle trees (crypto/merkle_forest.h) so one
//     case's integrity is verifiable without touching other cases, and
//   * every action anchored as a Table 1 forensics record.
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_DOMAINS_FORENSICS_CASE_MANAGER_H_
#define PROVLEDGER_DOMAINS_FORENSICS_CASE_MANAGER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "access/stage_gate.h"
#include "crypto/merkle_forest.h"
#include "prov/store.h"
#include "storage/content_store.h"

namespace provledger {
namespace forensics {

/// The five canonical stages (Figure 5).
const std::vector<std::string>& ForensicStages();

/// \brief One evidence item within a case.
struct Evidence {
  std::string evidence_id;
  std::string case_id;
  std::string file_type;
  crypto::Digest content_hash = crypto::ZeroDigest();
  /// Current custodian.
  std::string custodian;
  /// Ordered custody history (custodian ids).
  std::vector<std::string> custody_chain;
  uint64_t forest_index = 0;
};

/// \brief An investigation case.
struct Case {
  std::string case_id;
  std::string lead;
  std::string start_date;
  std::string closure_date;  // empty until reporting completes
  std::vector<std::string> evidence_ids;
};

/// \brief ForensiBlock-style case manager.
class CaseManager {
 public:
  CaseManager(prov::ProvenanceStore* store, storage::ContentStore* content,
              Clock* clock);

  /// Role wiring: investigators collect, analysts analyze, leads advance
  /// stages; see the constructor for the default gate matrix.
  access::StageGate* gate() { return &gate_; }

  /// Open a case in the identification stage.
  Status OpenCase(const std::string& case_id, const std::string& lead,
                  const std::string& start_date);
  /// Advance the case to its next stage (lead-only).
  Status AdvanceStage(const std::string& case_id, const std::string& actor);
  Result<std::string> CurrentStage(const std::string& case_id) const;

  /// \name Stage-scoped operations.
  /// @{
  /// Identification: register an evidence source.
  Status IdentifySource(const std::string& case_id, const std::string& source,
                        const std::string& actor);
  /// Preservation/collection: ingest evidence bytes. The content is stored
  /// off-chain; its hash goes into the case's Merkle partition and a
  /// forensics record is anchored. `actor` becomes the first custodian.
  Status CollectEvidence(const std::string& case_id,
                         const std::string& evidence_id,
                         const std::string& file_type, const Bytes& content,
                         const std::string& actor);
  /// Create an exact working duplicate of collected evidence (the
  /// "duplicate for detailed analysis" step). Fails if the original was
  /// tampered with in the content store.
  Result<std::string> DuplicateEvidence(const std::string& case_id,
                                        const std::string& evidence_id,
                                        const std::string& actor);
  /// Analysis: record an analysis action over evidence.
  Status AnalyzeEvidence(const std::string& case_id,
                         const std::string& evidence_id,
                         const std::string& finding,
                         const std::string& actor);
  /// Reporting: compile findings, close the case.
  Status FileReport(const std::string& case_id, const std::string& summary,
                    const std::string& actor,
                    const std::string& closure_date);
  /// @}

  /// Transfer custody of evidence (chain-of-custody record).
  Status TransferCustody(const std::string& case_id,
                         const std::string& evidence_id,
                         const std::string& from, const std::string& to);

  Result<Evidence> GetEvidence(const std::string& case_id,
                               const std::string& evidence_id) const;
  Result<Case> GetCase(const std::string& case_id) const;
  /// Full event history of one evidence item (custody + analysis).
  std::vector<prov::ProvenanceRecord> EvidenceHistory(
      const std::string& case_id, const std::string& evidence_id) const;
  /// Every anchored action in a case, optionally narrowed to one operation
  /// (e.g. "collect-evidence") — one planned query over the ledger.
  std::vector<prov::ProvenanceRecord> CaseActivity(
      const std::string& case_id, const std::string& operation = "") const;

  /// \name Case integrity (distributed Merkle tree).
  /// @{
  /// Root over this case's evidence partition.
  Result<crypto::Digest> CaseRoot(const std::string& case_id) const;
  /// Verify one evidence item's membership + content integrity against the
  /// whole forest. Detects both ledger-level and content-level tampering.
  Status VerifyEvidence(const std::string& case_id,
                        const std::string& evidence_id) const;
  /// @}

  size_t case_count() const { return cases_.size(); }

 private:
  std::string EvKey(const std::string& c, const std::string& e) const {
    return c + "/" + e;
  }
  Status Anchor(const std::string& case_id, const std::string& subject,
                const std::string& operation, const std::string& actor,
                std::map<std::string, std::string> extra = {});
  Bytes EvidenceLeaf(const Evidence& evidence) const;

  prov::ProvenanceStore* store_;
  storage::ContentStore* content_;
  Clock* clock_;
  access::StageGate gate_;
  crypto::MerkleForest forest_;
  std::map<std::string, Case> cases_;
  std::map<std::string, Evidence> evidence_;  // key: "<case>/<evidence>"
  uint64_t seq_ = 0;
};

}  // namespace forensics
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_FORENSICS_CASE_MANAGER_H_
