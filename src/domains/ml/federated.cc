#include "domains/ml/federated.h"

#include <algorithm>
#include <cmath>

namespace provledger {
namespace ml {

namespace {
double L2(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}
}  // namespace

FederatedLearning::FederatedLearning(const FlConfig& config,
                                     prov::ProvenanceStore* store,
                                     Clock* clock)
    : config_(config), store_(store), clock_(clock), rng_(config.seed) {
  true_weights_.resize(config_.dims);
  weights_.assign(config_.dims, 0.0);
  for (auto& w : true_weights_) w = rng_.NextGaussian(0.0, 1.0);

  // Assign adversary roles deterministically: the first k workers are
  // attackers, the next f are free riders.
  const size_t attackers = static_cast<size_t>(
      config_.attacker_fraction * static_cast<double>(config_.num_workers) +
      0.5);
  is_attacker_.assign(config_.num_workers, false);
  is_free_rider_.assign(config_.num_workers, false);
  for (size_t i = 0; i < attackers && i < config_.num_workers; ++i) {
    is_attacker_[i] = true;
  }
  for (size_t i = attackers;
       i < attackers + config_.free_riders && i < config_.num_workers; ++i) {
    is_free_rider_[i] = true;
  }
  reputation_.assign(config_.num_workers, 1.0);
}

double FederatedLearning::model_error() const {
  return L2(weights_, true_weights_);
}

std::vector<double> FederatedLearning::WorkerUpdate(size_t worker) {
  std::vector<double> update(config_.dims, 0.0);
  if (is_free_rider_[worker]) return update;  // zero contribution

  for (size_t d = 0; d < config_.dims; ++d) {
    // Honest gradient: step toward the truth as seen through this
    // worker's noisy local data.
    double gradient = (true_weights_[d] - weights_[d]) +
                      rng_.NextGaussian(0.0, config_.data_noise);
    if (is_attacker_[worker]) {
      // Model poisoning: amplified step in the wrong direction.
      gradient = -2.0 * gradient;
    }
    update[d] = gradient;
  }
  Compress(&update);
  return update;
}

void FederatedLearning::Compress(std::vector<double>* update) const {
  // Top-k sparsification (BlockDFL's gradient compression): zero all but
  // the largest-magnitude fraction of coordinates.
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(config_.compression_keep *
                             static_cast<double>(update->size())));
  if (keep >= update->size()) return;
  std::vector<size_t> order(update->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + keep - 1, order.end(),
                   [&](size_t a, size_t b) {
                     return std::fabs((*update)[a]) > std::fabs((*update)[b]);
                   });
  std::vector<bool> kept(update->size(), false);
  for (size_t i = 0; i < keep; ++i) kept[order[i]] = true;
  for (size_t i = 0; i < update->size(); ++i) {
    if (!kept[i]) (*update)[i] = 0.0;
  }
}

bool FederatedLearning::CommitteeApproves(const std::vector<double>& update) {
  // Each committee member scores the candidate against its own noisy
  // validation view; majority approval wins (BlockDFL's voting).
  size_t approvals = 0;
  for (size_t member = 0; member < config_.committee_size; ++member) {
    double before = 0.0, after = 0.0;
    for (size_t d = 0; d < config_.dims; ++d) {
      double validation_truth =
          true_weights_[d] + rng_.NextGaussian(0.0, config_.committee_noise);
      double current_gap = validation_truth - weights_[d];
      double next_gap =
          validation_truth -
          (weights_[d] + config_.learning_rate * update[d]);
      before += current_gap * current_gap;
      after += next_gap * next_gap;
    }
    if (after < before) ++approvals;
  }
  return approvals * 2 > config_.committee_size;
}

RoundStats FederatedLearning::RunRound() {
  RoundStats stats;
  stats.round = ++round_;
  stats.model_error = model_error();

  std::vector<std::vector<double>> accepted_updates;
  for (size_t worker = 0; worker < config_.num_workers; ++worker) {
    if (config_.aggregation == Aggregation::kBlockDfl && excluded(worker)) {
      ++stats.excluded;
      continue;
    }
    std::vector<double> update = WorkerUpdate(worker);
    stats.bytes_uploaded += static_cast<uint64_t>(
        sizeof(double) * config_.compression_keep *
        static_cast<double>(config_.dims));

    bool accept = true;
    if (config_.aggregation == Aggregation::kBlockDfl) {
      // Free-rider screen: all-zero updates earn no reputation and are
      // not aggregated.
      bool all_zero = true;
      for (double v : update) {
        if (v != 0.0) {
          all_zero = false;
          break;
        }
      }
      accept = !all_zero && CommitteeApproves(update);
    }

    if (accept) {
      accepted_updates.push_back(std::move(update));
      ++stats.accepted;
      reputation_[worker] = std::min(1.0, reputation_[worker] + 0.05);
    } else {
      ++stats.rejected;
      reputation_[worker] *= 0.8;
    }
  }

  if (!accepted_updates.empty()) {
    if (config_.aggregation == Aggregation::kFedAvg) {
      for (size_t d = 0; d < config_.dims; ++d) {
        double sum = 0;
        for (const auto& u : accepted_updates) sum += u[d];
        weights_[d] += config_.learning_rate *
                       (sum / static_cast<double>(accepted_updates.size()));
      }
    } else {
      // Coordinate-wise median: robust to residual outliers that slipped
      // past the vote.
      std::vector<double> column(accepted_updates.size());
      for (size_t d = 0; d < config_.dims; ++d) {
        for (size_t i = 0; i < accepted_updates.size(); ++i) {
          column[i] = accepted_updates[i][d];
        }
        std::nth_element(column.begin(), column.begin() + column.size() / 2,
                         column.end());
        weights_[d] += config_.learning_rate * column[column.size() / 2];
      }
    }
  }
  stats.model_error = model_error();

  if (store_ != nullptr) {
    prov::ProvenanceRecord rec;
    rec.record_id = "fl-round-" + std::to_string(round_) + "-" +
                    std::to_string(config_.seed);
    rec.domain = prov::Domain::kMachineLearning;
    rec.operation = "fl-round";
    rec.subject = "global-model";
    rec.agent = config_.aggregation == Aggregation::kBlockDfl ? "blockdfl"
                                                              : "fedavg";
    rec.timestamp = clock_->NowMicros();
    rec.fields["round"] = std::to_string(round_);
    rec.fields["accepted"] = std::to_string(stats.accepted);
    rec.fields["rejected"] = std::to_string(stats.rejected);
    rec.fields["error"] = std::to_string(stats.model_error);
    stats.provenance = store_->Anchor(rec);
  }
  return stats;
}

RoundStats FederatedLearning::RunRounds(size_t n) {
  RoundStats last;
  Status provenance;  // first anchoring failure anywhere in the run
  for (size_t i = 0; i < n; ++i) {
    last = RunRound();
    if (provenance.ok()) provenance = last.provenance;
  }
  last.provenance = provenance;
  return last;
}

}  // namespace ml
}  // namespace provledger
