#include "domains/ml/asset_graph.h"

namespace provledger {
namespace ml {

const char* AssetKindName(AssetKind kind) {
  switch (kind) {
    case AssetKind::kDataset:
      return "dataset";
    case AssetKind::kOperation:
      return "operation";
    case AssetKind::kModel:
      return "model";
  }
  return "unknown";
}

AssetGraph::AssetGraph(prov::ProvenanceStore* store, Clock* clock)
    : store_(store), clock_(clock) {}

Status AssetGraph::Register(const std::string& asset_id, AssetKind kind,
                            const std::string& owner,
                            const std::string& operation,
                            const std::vector<std::string>& inputs) {
  if (kinds_.count(asset_id)) {
    return Status::AlreadyExists("asset already registered: " + asset_id);
  }
  for (const auto& input : inputs) {
    if (!kinds_.count(input)) {
      return Status::NotFound("input asset not registered: " + input);
    }
  }
  prov::ProvenanceRecord rec;
  rec.record_id = "ml-" + std::to_string(++seq_);
  rec.domain = prov::Domain::kMachineLearning;
  rec.operation = operation;
  rec.subject = asset_id;
  rec.agent = owner;
  rec.timestamp = clock_->NowMicros();
  rec.inputs = inputs;
  rec.outputs = {asset_id};
  rec.fields["asset_kind"] = AssetKindName(kind);
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(rec));

  kinds_.emplace(asset_id, kind);
  owners_.emplace(asset_id, owner);
  return Status::OK();
}

Status AssetGraph::RegisterDataset(const std::string& dataset_id,
                                   const std::string& owner) {
  return Register(dataset_id, AssetKind::kDataset, owner, "register-dataset",
                  {});
}

Status AssetGraph::RegisterModel(const std::string& model_id,
                                 const std::string& owner,
                                 const std::string& operation,
                                 const std::vector<std::string>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("a model needs at least one input asset");
  }
  return Register(model_id, AssetKind::kModel, owner, operation, inputs);
}

Status AssetGraph::RegisterDerivedDataset(
    const std::string& dataset_id, const std::string& owner,
    const std::string& operation, const std::vector<std::string>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument(
        "a derived dataset needs at least one input");
  }
  return Register(dataset_id, AssetKind::kDataset, owner, operation, inputs);
}

Result<AssetKind> AssetGraph::KindOf(const std::string& asset_id) const {
  auto it = kinds_.find(asset_id);
  if (it == kinds_.end()) {
    return Status::NotFound("no such asset: " + asset_id);
  }
  return it->second;
}

bool AssetGraph::HasAsset(const std::string& asset_id) const {
  return kinds_.count(asset_id) > 0;
}

std::vector<std::string> AssetGraph::AssetLineage(
    const std::string& asset_id) const {
  return store_->Lineage(asset_id);
}

std::vector<prov::ProvenanceRecord> AssetGraph::AssetHistory(
    const std::string& asset_id) const {
  return store_
      ->Execute(prov::Query().WithSubject(asset_id).WithDomain(
          prov::Domain::kMachineLearning))
      .records;
}

std::vector<prov::ProvenanceRecord> AssetGraph::OperationsBy(
    const std::string& owner) const {
  return store_
      ->Execute(prov::Query()
                    .WithAgent(store_->OnChainAgentId(owner))
                    .WithDomain(prov::Domain::kMachineLearning))
      .records;
}

std::vector<prov::ProvenanceRecord> AssetGraph::DerivedFrom(
    const std::string& asset_id) const {
  return store_
      ->Execute(prov::Query().WithInput(asset_id).WithDomain(
          prov::Domain::kMachineLearning))
      .records;
}

std::set<std::string> AssetGraph::Contributors(
    const std::string& asset_id) const {
  std::set<std::string> contributors;
  for (const auto& ancestor : store_->Lineage(asset_id)) {
    auto kind_it = kinds_.find(ancestor);
    if (kind_it != kinds_.end() && kind_it->second == AssetKind::kDataset) {
      auto owner_it = owners_.find(ancestor);
      if (owner_it != owners_.end()) contributors.insert(owner_it->second);
    }
  }
  return contributors;
}

}  // namespace ml
}  // namespace provledger
