// AI-asset provenance (Lüthi et al. [51]): datasets, operations, and models
// as first-class assets in a DAG, tracked without requiring a corresponding
// operation for every asset, supporting audits ("which datasets shaped this
// model?") and fair-compensation queries ("who contributed to it?").
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_DOMAINS_ML_ASSET_GRAPH_H_
#define PROVLEDGER_DOMAINS_ML_ASSET_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "prov/store.h"

namespace provledger {
namespace ml {

/// \brief Asset classification (Lüthi et al.'s three classes).
enum class AssetKind : uint8_t { kDataset = 0, kOperation = 1, kModel = 2 };

const char* AssetKindName(AssetKind kind);

/// \brief Registry of AI assets over a ProvenanceStore.
class AssetGraph {
 public:
  AssetGraph(prov::ProvenanceStore* store, Clock* clock);

  /// Register a dataset owned by `owner` (no generating operation needed).
  Status RegisterDataset(const std::string& dataset_id,
                         const std::string& owner);
  /// Register a model produced by `operation` from `input_assets`
  /// (datasets and/or earlier models).
  Status RegisterModel(const std::string& model_id, const std::string& owner,
                       const std::string& operation,
                       const std::vector<std::string>& input_assets);
  /// Register a derived dataset (e.g. a preprocessing output).
  Status RegisterDerivedDataset(const std::string& dataset_id,
                                const std::string& owner,
                                const std::string& operation,
                                const std::vector<std::string>& input_assets);

  Result<AssetKind> KindOf(const std::string& asset_id) const;
  bool HasAsset(const std::string& asset_id) const;

  /// All assets in `model_id`'s ancestry (audit query).
  std::vector<std::string> AssetLineage(const std::string& asset_id) const;
  /// Distinct owners of datasets in the asset's ancestry — the fair-
  /// compensation set.
  std::set<std::string> Contributors(const std::string& asset_id) const;

  /// \name Ledger queries (planned over the store's indexes).
  /// @{
  /// Anchored ML records about one asset.
  std::vector<prov::ProvenanceRecord> AssetHistory(
      const std::string& asset_id) const;
  /// Every registration an owner performed.
  std::vector<prov::ProvenanceRecord> OperationsBy(
      const std::string& owner) const;
  /// Registrations that consumed `asset_id` directly (one derivation hop;
  /// input-index query).
  std::vector<prov::ProvenanceRecord> DerivedFrom(
      const std::string& asset_id) const;
  /// @}

  size_t asset_count() const { return kinds_.size(); }

 private:
  Status Register(const std::string& asset_id, AssetKind kind,
                  const std::string& owner, const std::string& operation,
                  const std::vector<std::string>& inputs);

  prov::ProvenanceStore* store_;
  Clock* clock_;
  std::map<std::string, AssetKind> kinds_;
  std::map<std::string, std::string> owners_;
  uint64_t seq_ = 0;
};

}  // namespace ml
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_ML_ASSET_GRAPH_H_
