// Blockchain-coordinated federated learning (§4.4): a deterministic FL
// simulation comparing plain FedAvg against a BlockDFL-style [62] pipeline —
// committee voting over candidate updates, top-k gradient compression, and
// Yang-et-al-style [84] reputation scoring with exclusion — under injectable
// model-poisoning and free-riding attacks.
//
// The learning task is a synthetic linear model: workers hold noisy views
// of a hidden true weight vector; honest updates step the global model
// toward it, poisoned updates step away (sign-flipped, scaled). The metric
// `model_error()` (L2 distance to the truth) is the accuracy proxy whose
// attacker-fraction sweep reproduces the "stable under ~50% attacks" shape
// (bench_ml_poisoning).
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_DOMAINS_ML_FEDERATED_H_
#define PROVLEDGER_DOMAINS_ML_FEDERATED_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "prov/store.h"

namespace provledger {
namespace ml {

/// \brief Aggregation strategy.
enum class Aggregation : uint8_t {
  kFedAvg = 0,    // unweighted mean of all submissions (baseline)
  kBlockDfl = 1,  // committee vote + reputation-gated median aggregation
};

/// \brief Simulation configuration.
struct FlConfig {
  size_t num_workers = 10;
  size_t dims = 16;
  double learning_rate = 0.3;
  /// Std-dev of honest workers' gradient noise (non-IID-ness knob).
  double data_noise = 0.05;
  /// Fraction of workers submitting sign-flipped (poisoned) updates.
  double attacker_fraction = 0.0;
  /// Number of workers submitting zero updates (free riders).
  size_t free_riders = 0;
  Aggregation aggregation = Aggregation::kBlockDfl;
  /// Committee size for BlockDFL voting.
  size_t committee_size = 5;
  /// Per-committee-member validation noise.
  double committee_noise = 0.05;
  /// Keep only this fraction of gradient coordinates (top-k compression).
  double compression_keep = 0.5;
  /// Reputation threshold below which a worker is excluded.
  double reputation_floor = 0.3;
  uint64_t seed = 42;
};

/// \brief Per-round outcome.
struct RoundStats {
  size_t round = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  size_t excluded = 0;  // workers barred by reputation before the round
  double model_error = 0.0;
  uint64_t bytes_uploaded = 0;  // after compression
  /// OK when this round's provenance record anchored (always OK without a
  /// store). From RunRounds: the FIRST anchoring failure across the run —
  /// a training run whose lineage has a hole must not report clean stats.
  Status provenance = Status::OK();
};

/// \brief The FL coordinator (the role the blockchain replaces the central
/// server with).
class FederatedLearning {
 public:
  /// `store` may be null; when provided, every round anchors an ML-domain
  /// provenance record (training auditability, §4.6).
  FederatedLearning(const FlConfig& config, prov::ProvenanceStore* store,
                    Clock* clock);

  /// Run one training round; returns its stats.
  RoundStats RunRound();
  /// Run `n` rounds; returns the final round's stats.
  RoundStats RunRounds(size_t n);

  /// L2 distance between the global model and the hidden truth.
  double model_error() const;
  double reputation(size_t worker) const { return reputation_[worker]; }
  bool excluded(size_t worker) const {
    return reputation_[worker] < config_.reputation_floor;
  }
  size_t rounds_run() const { return round_; }
  const std::vector<double>& model() const { return weights_; }

 private:
  std::vector<double> WorkerUpdate(size_t worker);
  bool CommitteeApproves(const std::vector<double>& update);
  void Compress(std::vector<double>* update) const;

  FlConfig config_;
  prov::ProvenanceStore* store_;
  Clock* clock_;
  Rng rng_;
  std::vector<double> true_weights_;
  std::vector<double> weights_;
  std::vector<bool> is_attacker_;
  std::vector<bool> is_free_rider_;
  std::vector<double> reputation_;
  size_t round_ = 0;
};

}  // namespace ml
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_ML_FEDERATED_H_
