// RQ1: single-entity cloud provenance (ProvChain [47], the OpenStack-Swift
// system [56], BlockCloud [75], the IPFS variant [33]).
//
// A simulated cloud object store whose every user operation — create, read,
// update, share, delete — fires a provenance hook that anchors a record on
// the blockchain. File content lives in a content-addressed store (hash on
// chain, bytes off chain); user identities can be anonymized on-chain
// (ProvChain's privacy property); and an independent Auditor verifies a
// user's full history against the ledger with Merkle proofs.
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_CLOUD_CLOUD_STORE_H_
#define PROVLEDGER_CLOUD_CLOUD_STORE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "prov/store.h"
#include "storage/content_store.h"

namespace provledger {
namespace cloud {

/// \brief A stored cloud object.
struct CloudFile {
  std::string name;
  std::string owner;
  crypto::Digest content_cid = crypto::ZeroDigest();
  uint64_t version = 0;
  std::set<std::string> shared_with;
  bool deleted = false;
};

/// \brief Simulated cloud storage with blockchain provenance hooks.
class CloudStore {
 public:
  CloudStore(prov::ProvenanceStore* store, storage::ContentStore* content,
             Clock* clock);

  /// \name User file operations (each anchors a cloud-domain record).
  /// @{
  Status CreateFile(const std::string& user, const std::string& name,
                    const Bytes& content);
  Result<Bytes> ReadFile(const std::string& user, const std::string& name);
  Status UpdateFile(const std::string& user, const std::string& name,
                    const Bytes& content);
  Status ShareFile(const std::string& owner, const std::string& name,
                   const std::string& with_user);
  Status DeleteFile(const std::string& user, const std::string& name);
  /// @}

  /// Provenance history of a file, oldest first.
  std::vector<prov::ProvenanceRecord> FileHistory(
      const std::string& name) const;
  /// Number of operations recorded.
  size_t operation_count() const { return op_count_; }
  Result<CloudFile> GetFile(const std::string& name) const;

 private:
  bool CanAccess(const CloudFile& file, const std::string& user) const;
  Status Hook(const std::string& user, const std::string& name,
              const std::string& operation, const crypto::Digest& cid,
              uint64_t version);

  prov::ProvenanceStore* store_;
  storage::ContentStore* content_;
  Clock* clock_;
  std::map<std::string, CloudFile> files_;
  size_t op_count_ = 0;
  uint64_t seq_ = 0;
};

/// \brief Independent auditor (ProvChain's "auditor" role): replays a
/// user's on-chain history and Merkle-verifies every record.
class CloudAuditor {
 public:
  explicit CloudAuditor(prov::ProvenanceStore* store) : store_(store) {}

  /// Verify every anchored record for `subject` (a file). Returns the
  /// number of verified records; Corruption on the first bad proof.
  Result<size_t> AuditFile(const std::string& file_name) const;
  /// Verify the whole provenance ledger.
  Result<size_t> AuditEverything() const;

 private:
  prov::ProvenanceStore* store_;
};

}  // namespace cloud
}  // namespace provledger

#endif  // PROVLEDGER_CLOUD_CLOUD_STORE_H_
