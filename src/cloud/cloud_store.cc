#include "cloud/cloud_store.h"

namespace provledger {
namespace cloud {

CloudStore::CloudStore(prov::ProvenanceStore* store,
                       storage::ContentStore* content, Clock* clock)
    : store_(store), content_(content), clock_(clock) {}

bool CloudStore::CanAccess(const CloudFile& file,
                           const std::string& user) const {
  return file.owner == user || file.shared_with.count(user) > 0;
}

Status CloudStore::Hook(const std::string& user, const std::string& name,
                        const std::string& operation,
                        const crypto::Digest& cid, uint64_t version) {
  prov::ProvenanceRecord rec;
  rec.record_id = "cloud-" + std::to_string(++seq_);
  rec.domain = prov::Domain::kCloud;
  rec.operation = operation;
  rec.subject = name;
  rec.agent = user;
  rec.timestamp = clock_->NowMicros();
  rec.payload_hash = cid;
  rec.fields["version"] = std::to_string(version);
  ++op_count_;
  return store_->Anchor(rec);
}

Status CloudStore::CreateFile(const std::string& user, const std::string& name,
                              const Bytes& content) {
  auto it = files_.find(name);
  if (it != files_.end() && !it->second.deleted) {
    return Status::AlreadyExists("file exists: " + name);
  }
  CloudFile file;
  file.name = name;
  file.owner = user;
  file.content_cid = content_->Put(content);
  file.version = 1;
  files_[name] = std::move(file);
  return Hook(user, name, "create", files_[name].content_cid, 1);
}

Result<Bytes> CloudStore::ReadFile(const std::string& user,
                                   const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.deleted) {
    return Status::NotFound("no such file: " + name);
  }
  if (!CanAccess(it->second, user)) {
    PROVLEDGER_RETURN_NOT_OK(
        Hook(user, name, "read-denied", crypto::ZeroDigest(),
             it->second.version));
    return Status::PermissionDenied(user + " may not read " + name);
  }
  PROVLEDGER_RETURN_NOT_OK(
      Hook(user, name, "read", it->second.content_cid, it->second.version));
  return content_->GetVerified(it->second.content_cid);
}

Status CloudStore::UpdateFile(const std::string& user, const std::string& name,
                              const Bytes& content) {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.deleted) {
    return Status::NotFound("no such file: " + name);
  }
  if (!CanAccess(it->second, user)) {
    return Status::PermissionDenied(user + " may not update " + name);
  }
  it->second.content_cid = content_->Put(content);
  it->second.version++;
  return Hook(user, name, "update", it->second.content_cid,
              it->second.version);
}

Status CloudStore::ShareFile(const std::string& owner, const std::string& name,
                             const std::string& with_user) {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.deleted) {
    return Status::NotFound("no such file: " + name);
  }
  if (it->second.owner != owner) {
    return Status::PermissionDenied("only the owner may share " + name);
  }
  it->second.shared_with.insert(with_user);
  return Hook(owner, name, "share:" + with_user, it->second.content_cid,
              it->second.version);
}

Status CloudStore::DeleteFile(const std::string& user,
                              const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.deleted) {
    return Status::NotFound("no such file: " + name);
  }
  if (it->second.owner != user) {
    return Status::PermissionDenied("only the owner may delete " + name);
  }
  it->second.deleted = true;
  return Hook(user, name, "delete", it->second.content_cid,
              it->second.version);
}

std::vector<prov::ProvenanceRecord> CloudStore::FileHistory(
    const std::string& name) const {
  return store_->SubjectHistory(name);
}

Result<CloudFile> CloudStore::GetFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return it->second;
}

Result<size_t> CloudAuditor::AuditFile(const std::string& file_name) const {
  // Streamed query: verify each record as the subject index yields it —
  // no full-history copy, and a failure stops the scan immediately.
  size_t verified = 0;
  Status failure = Status::OK();
  store_->Execute(prov::Query().WithSubject(file_name),
                  [&](const prov::ProvenanceRecord& rec) {
                    auto proof = store_->ProveRecord(rec.record_id);
                    if (!proof.ok()) {
                      failure = proof.status();
                      return false;
                    }
                    if (!store_->VerifyRecordProof(rec, proof.value())) {
                      failure = Status::Corruption(
                          "record failed verification: " + rec.record_id);
                      return false;
                    }
                    ++verified;
                    return true;
                  });
  if (!failure.ok()) return failure;
  return verified;
}

Result<size_t> CloudAuditor::AuditEverything() const {
  return store_->AuditAll();
}

}  // namespace cloud
}  // namespace provledger
