#include "access/rbac.h"

namespace provledger {
namespace access {

void RbacPolicy::DefineRole(const std::string& role) { roles_[role]; }

Status RbacPolicy::GrantPermission(const std::string& role,
                                   const std::string& permission) {
  auto it = roles_.find(role);
  if (it == roles_.end()) return Status::NotFound("no such role: " + role);
  it->second.insert(permission);
  return Status::OK();
}

Status RbacPolicy::RevokePermission(const std::string& role,
                                    const std::string& permission) {
  auto it = roles_.find(role);
  if (it == roles_.end()) return Status::NotFound("no such role: " + role);
  it->second.erase(permission);
  return Status::OK();
}

Status RbacPolicy::AssignRole(const std::string& principal,
                              const std::string& role) {
  if (!roles_.count(role)) return Status::NotFound("no such role: " + role);
  assignments_[principal].insert(role);
  return Status::OK();
}

Status RbacPolicy::UnassignRole(const std::string& principal,
                                const std::string& role) {
  auto it = assignments_.find(principal);
  if (it == assignments_.end() || !it->second.count(role)) {
    return Status::NotFound("principal does not hold role: " + role);
  }
  it->second.erase(role);
  return Status::OK();
}

bool RbacPolicy::Check(const std::string& principal,
                       const std::string& permission) const {
  auto it = assignments_.find(principal);
  if (it == assignments_.end()) return false;
  for (const auto& role : it->second) {
    auto role_it = roles_.find(role);
    if (role_it != roles_.end() && role_it->second.count(permission)) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> RbacPolicy::RolesOf(
    const std::string& principal) const {
  auto it = assignments_.find(principal);
  if (it == assignments_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::string> RbacPolicy::PermissionsOf(
    const std::string& role) const {
  auto it = roles_.find(role);
  if (it == roles_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

}  // namespace access
}  // namespace provledger
