// Attribute-based access control (§6.1): policies are rules over subject,
// resource, and environment attributes. More expressive than RBAC (and
// correspondingly slower to evaluate — bench_access_control measures the
// gap the paper's design-considerations section alludes to).
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_ACCESS_ABAC_H_
#define PROVLEDGER_ACCESS_ABAC_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace provledger {
namespace access {

/// Attribute bag: name -> value.
using Attributes = std::map<std::string, std::string>;

/// \brief One condition inside a rule.
struct AbacCondition {
  enum class Scope : uint8_t { kSubject, kResource, kEnvironment };
  enum class Op : uint8_t { kEquals, kNotEquals, kIn, kPrefix };

  Scope scope = Scope::kSubject;
  std::string attribute;
  Op op = Op::kEquals;
  /// For kIn, `value` holds comma-separated alternatives.
  std::string value;

  bool Matches(const Attributes& subject, const Attributes& resource,
               const Attributes& environment) const;
};

/// \brief A rule: if all conditions match for the given action, the effect
/// applies. Deny overrides allow.
struct AbacRule {
  std::string id;
  std::string action;  // "*" matches any action
  std::vector<AbacCondition> conditions;
  bool allow = true;
};

/// \brief Policy: ordered rule list with deny-overrides combining.
class AbacPolicy {
 public:
  void AddRule(AbacRule rule);
  size_t rule_count() const { return rules_.size(); }

  /// Evaluate an access request. Default-deny: no matching allow => false.
  bool Check(const Attributes& subject, const std::string& action,
             const Attributes& resource,
             const Attributes& environment = {}) const;

 private:
  std::vector<AbacRule> rules_;
};

}  // namespace access
}  // namespace provledger

#endif  // PROVLEDGER_ACCESS_ABAC_H_
