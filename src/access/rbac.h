// Role-based access control (§6.1 "Access Control"): roles aggregate
// permissions; principals hold roles. Used directly by the healthcare and
// forensics domains, and as the baseline in bench_access_control.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_ACCESS_RBAC_H_
#define PROVLEDGER_ACCESS_RBAC_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace provledger {
namespace access {

/// \brief Role/permission registry with principal-role assignment.
class RbacPolicy {
 public:
  /// Define a role (idempotent) and attach permissions to it.
  void DefineRole(const std::string& role);
  Status GrantPermission(const std::string& role,
                         const std::string& permission);
  Status RevokePermission(const std::string& role,
                          const std::string& permission);

  /// Assign/remove a role for a principal.
  Status AssignRole(const std::string& principal, const std::string& role);
  Status UnassignRole(const std::string& principal, const std::string& role);

  /// True iff any of the principal's roles carries the permission.
  bool Check(const std::string& principal,
             const std::string& permission) const;

  std::vector<std::string> RolesOf(const std::string& principal) const;
  std::vector<std::string> PermissionsOf(const std::string& role) const;
  size_t role_count() const { return roles_.size(); }

 private:
  std::map<std::string, std::set<std::string>> roles_;       // role -> perms
  std::map<std::string, std::set<std::string>> assignments_; // who -> roles
};

}  // namespace access
}  // namespace provledger

#endif  // PROVLEDGER_ACCESS_RBAC_H_
