// LedgerView-style access-control views [66]: a view is a named, filtered
// window onto a channel's provenance records, granted to a member set.
// Views are *revocable* (the owner can remove members later) or
// *irrevocable* (membership is a permanent capability — revocation attempts
// fail), the distinction LedgerView contributes on Hyperledger Fabric.
// Views compose with RBAC: a view can require a role for reading.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_ACCESS_VIEWS_H_
#define PROVLEDGER_ACCESS_VIEWS_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "access/rbac.h"
#include "prov/store.h"

namespace provledger {
namespace access {

/// \brief Declarative record filter for a view.
struct ViewFilter {
  /// Only records whose subject starts with this prefix ("" = all).
  std::string subject_prefix;
  /// Only records with one of these operations (empty = all).
  std::set<std::string> operations;
  /// Only records from this domain (nullopt = all).
  std::optional<prov::Domain> domain;

  /// The filter as a composable store query (index-planned execution).
  prov::Query ToQuery() const;
  bool Matches(const prov::ProvenanceRecord& record) const;
};

/// \brief A view definition.
struct View {
  std::string name;
  std::string owner;
  ViewFilter filter;
  bool revocable = true;
  std::set<std::string> members;
  /// Optional role requirement checked against an RbacPolicy.
  std::string required_role;
};

/// \brief Registry of views over one ProvenanceStore.
class ViewManager {
 public:
  explicit ViewManager(const prov::ProvenanceStore* store,
                       const RbacPolicy* rbac = nullptr)
      : store_(store), rbac_(rbac) {}

  /// Create a view owned by `owner`.
  Status CreateView(View view);
  bool HasView(const std::string& name) const { return views_.count(name); }

  /// Owner-only membership management. Revoke fails on irrevocable views
  /// (LedgerView's contract).
  Status Grant(const std::string& view, const std::string& requester,
               const std::string& member);
  Status Revoke(const std::string& view, const std::string& requester,
                const std::string& member);

  /// True iff `principal` may read through the view (member + role check).
  bool CheckAccess(const std::string& view,
                   const std::string& principal) const;

  /// Records visible to `principal` through the view, or PermissionDenied.
  Result<std::vector<prov::ProvenanceRecord>> Query(
      const std::string& view, const std::string& principal,
      const std::string& subject) const;

  size_t view_count() const { return views_.size(); }

 private:
  const prov::ProvenanceStore* store_;
  const RbacPolicy* rbac_;
  std::map<std::string, View> views_;
};

}  // namespace access
}  // namespace provledger

#endif  // PROVLEDGER_ACCESS_VIEWS_H_
