#include "access/abac.h"

#include <sstream>

namespace provledger {
namespace access {

bool AbacCondition::Matches(const Attributes& subject,
                            const Attributes& resource,
                            const Attributes& environment) const {
  const Attributes* bag = nullptr;
  switch (scope) {
    case Scope::kSubject:
      bag = &subject;
      break;
    case Scope::kResource:
      bag = &resource;
      break;
    case Scope::kEnvironment:
      bag = &environment;
      break;
  }
  auto it = bag->find(attribute);
  if (it == bag->end()) return false;
  const std::string& actual = it->second;

  switch (op) {
    case Op::kEquals:
      return actual == value;
    case Op::kNotEquals:
      return actual != value;
    case Op::kIn: {
      std::stringstream ss(value);
      std::string alternative;
      while (std::getline(ss, alternative, ',')) {
        if (actual == alternative) return true;
      }
      return false;
    }
    case Op::kPrefix:
      return actual.compare(0, value.size(), value) == 0;
  }
  return false;
}

void AbacPolicy::AddRule(AbacRule rule) { rules_.push_back(std::move(rule)); }

bool AbacPolicy::Check(const Attributes& subject, const std::string& action,
                       const Attributes& resource,
                       const Attributes& environment) const {
  bool allowed = false;
  for (const auto& rule : rules_) {
    if (rule.action != "*" && rule.action != action) continue;
    bool all_match = true;
    for (const auto& cond : rule.conditions) {
      if (!cond.Matches(subject, resource, environment)) {
        all_match = false;
        break;
      }
    }
    if (!all_match) continue;
    if (!rule.allow) return false;  // deny overrides
    allowed = true;
  }
  return allowed;
}

}  // namespace access
}  // namespace provledger
