// Stage-scoped access control (ForensiBlock [12]): permissions depend on the
// current stage of a process (e.g. a forensic investigation's five stages,
// Figure 5). Stage transitions are themselves permission-gated and recorded,
// and access rights change automatically as the process advances — the
// "supporting investigation stage changes" mechanism of ForensiBlock.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_ACCESS_STAGE_GATE_H_
#define PROVLEDGER_ACCESS_STAGE_GATE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace provledger {
namespace access {

/// \brief A recorded stage transition.
struct StageTransition {
  std::string process;
  std::string from_stage;
  std::string to_stage;
  std::string actor;
  Timestamp at = 0;
};

/// \brief Per-stage permission gates over named processes.
class StageGate {
 public:
  /// Define the linear stage sequence (e.g. the five forensic stages).
  explicit StageGate(std::vector<std::string> stages);

  /// Allow `role` to perform `action` during `stage`.
  Status AllowInStage(const std::string& stage, const std::string& role,
                      const std::string& action);
  /// Allow `role` to advance processes out of `stage`.
  Status AllowTransition(const std::string& stage, const std::string& role);

  /// Start a process in the first stage.
  Status StartProcess(const std::string& process);
  Result<std::string> CurrentStage(const std::string& process) const;

  /// True iff `role` may perform `action` on `process` in its current stage.
  bool Check(const std::string& process, const std::string& role,
             const std::string& action) const;

  /// Advance `process` to the next stage; `actor_role` must be transition-
  /// authorized for the current stage. Records the transition.
  Status Advance(const std::string& process, const std::string& actor,
                 const std::string& actor_role, Timestamp at);

  const std::vector<StageTransition>& transitions() const {
    return transitions_;
  }
  const std::vector<std::string>& stages() const { return stages_; }
  /// True once the process has passed the final stage.
  bool IsComplete(const std::string& process) const;

 private:
  std::vector<std::string> stages_;
  std::map<std::string, size_t> stage_index_;
  // stage -> role -> allowed actions.
  std::map<std::string, std::map<std::string, std::set<std::string>>> gates_;
  // stage -> roles allowed to advance.
  std::map<std::string, std::set<std::string>> transition_roles_;
  // process -> current stage index (== stages_.size() when complete).
  std::map<std::string, size_t> processes_;
  std::vector<StageTransition> transitions_;
};

}  // namespace access
}  // namespace provledger

#endif  // PROVLEDGER_ACCESS_STAGE_GATE_H_
