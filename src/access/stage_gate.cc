#include "access/stage_gate.h"

namespace provledger {
namespace access {

StageGate::StageGate(std::vector<std::string> stages)
    : stages_(std::move(stages)) {
  for (size_t i = 0; i < stages_.size(); ++i) stage_index_[stages_[i]] = i;
}

Status StageGate::AllowInStage(const std::string& stage,
                               const std::string& role,
                               const std::string& action) {
  if (!stage_index_.count(stage)) {
    return Status::NotFound("no such stage: " + stage);
  }
  gates_[stage][role].insert(action);
  return Status::OK();
}

Status StageGate::AllowTransition(const std::string& stage,
                                  const std::string& role) {
  if (!stage_index_.count(stage)) {
    return Status::NotFound("no such stage: " + stage);
  }
  transition_roles_[stage].insert(role);
  return Status::OK();
}

Status StageGate::StartProcess(const std::string& process) {
  if (stages_.empty()) {
    return Status::FailedPrecondition("no stages defined");
  }
  if (processes_.count(process)) {
    return Status::AlreadyExists("process already started: " + process);
  }
  processes_[process] = 0;
  return Status::OK();
}

Result<std::string> StageGate::CurrentStage(const std::string& process) const {
  auto it = processes_.find(process);
  if (it == processes_.end()) {
    return Status::NotFound("no such process: " + process);
  }
  if (it->second >= stages_.size()) {
    return Status::FailedPrecondition("process is complete");
  }
  return stages_[it->second];
}

bool StageGate::Check(const std::string& process, const std::string& role,
                      const std::string& action) const {
  auto stage = CurrentStage(process);
  if (!stage.ok()) return false;
  auto stage_it = gates_.find(stage.value());
  if (stage_it == gates_.end()) return false;
  auto role_it = stage_it->second.find(role);
  if (role_it == stage_it->second.end()) return false;
  return role_it->second.count(action) > 0;
}

Status StageGate::Advance(const std::string& process, const std::string& actor,
                          const std::string& actor_role, Timestamp at) {
  auto it = processes_.find(process);
  if (it == processes_.end()) {
    return Status::NotFound("no such process: " + process);
  }
  if (it->second >= stages_.size()) {
    return Status::FailedPrecondition("process already complete");
  }
  const std::string& current = stages_[it->second];
  auto roles_it = transition_roles_.find(current);
  if (roles_it == transition_roles_.end() ||
      !roles_it->second.count(actor_role)) {
    return Status::PermissionDenied("role " + actor_role +
                                    " may not advance stage " + current);
  }
  StageTransition transition;
  transition.process = process;
  transition.from_stage = current;
  transition.to_stage =
      (it->second + 1 < stages_.size()) ? stages_[it->second + 1] : "complete";
  transition.actor = actor;
  transition.at = at;
  transitions_.push_back(std::move(transition));
  ++it->second;
  return Status::OK();
}

bool StageGate::IsComplete(const std::string& process) const {
  auto it = processes_.find(process);
  return it != processes_.end() && it->second >= stages_.size();
}

}  // namespace access
}  // namespace provledger
