#include "access/views.h"

namespace provledger {
namespace access {

prov::Query ViewFilter::ToQuery() const {
  prov::Query query;
  if (!subject_prefix.empty()) query.WithSubjectPrefix(subject_prefix);
  for (const auto& op : operations) query.WithOperation(op);
  if (domain.has_value()) query.WithDomain(*domain);
  return query;
}

bool ViewFilter::Matches(const prov::ProvenanceRecord& record) const {
  // Allocation-free single-record predicate; ToQuery() is for handing the
  // whole filter to the store's planner.
  if (!subject_prefix.empty() &&
      record.subject.compare(0, subject_prefix.size(), subject_prefix) != 0) {
    return false;
  }
  if (!operations.empty() && !operations.count(record.operation)) {
    return false;
  }
  if (domain.has_value() && record.domain != *domain) return false;
  return true;
}

Status ViewManager::CreateView(View view) {
  if (view.name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  if (views_.count(view.name)) {
    return Status::AlreadyExists("view already exists: " + view.name);
  }
  // The owner is always a member.
  view.members.insert(view.owner);
  views_.emplace(view.name, std::move(view));
  return Status::OK();
}

Status ViewManager::Grant(const std::string& view_name,
                          const std::string& requester,
                          const std::string& member) {
  auto it = views_.find(view_name);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + view_name);
  }
  if (it->second.owner != requester) {
    return Status::PermissionDenied("only the view owner may grant access");
  }
  it->second.members.insert(member);
  return Status::OK();
}

Status ViewManager::Revoke(const std::string& view_name,
                           const std::string& requester,
                           const std::string& member) {
  auto it = views_.find(view_name);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + view_name);
  }
  View& view = it->second;
  if (view.owner != requester) {
    return Status::PermissionDenied("only the view owner may revoke access");
  }
  if (!view.revocable) {
    return Status::FailedPrecondition(
        "view is irrevocable: membership is a permanent capability");
  }
  if (member == view.owner) {
    return Status::InvalidArgument("cannot revoke the view owner");
  }
  view.members.erase(member);
  return Status::OK();
}

bool ViewManager::CheckAccess(const std::string& view_name,
                              const std::string& principal) const {
  auto it = views_.find(view_name);
  if (it == views_.end()) return false;
  const View& view = it->second;
  if (!view.members.count(principal)) return false;
  if (!view.required_role.empty()) {
    if (rbac_ == nullptr) return false;
    bool has_role = false;
    for (const auto& role : rbac_->RolesOf(principal)) {
      if (role == view.required_role) {
        has_role = true;
        break;
      }
    }
    if (!has_role) return false;
  }
  return true;
}

Result<std::vector<prov::ProvenanceRecord>> ViewManager::Query(
    const std::string& view_name, const std::string& principal,
    const std::string& subject) const {
  auto it = views_.find(view_name);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + view_name);
  }
  if (!CheckAccess(view_name, principal)) {
    return Status::PermissionDenied(principal + " may not read view " +
                                    view_name);
  }
  // One planned query: the store scans the subject postings and applies
  // the view filter per candidate — no fetch-then-filter copy.
  return store_->Execute(it->second.filter.ToQuery().WithSubject(subject))
      .records;
}

}  // namespace access
}  // namespace provledger
