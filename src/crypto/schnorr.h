// Schnorr signatures over secp256k1 (BIP340-flavoured, full-point variant).
//
// This is ProvLedger's substitute for the production ECDSA/Ed25519 libraries
// the surveyed systems use (DESIGN.md §3): identical sign/verify/aggregate
// code paths and asymptotics, deterministic nonces (RFC6979-style via
// HMAC), and m-of-n multi-signature support for notary committees.
//
// Thread safety: stateless free functions and plain value types — safe from
// any thread.

#ifndef PROVLEDGER_CRYPTO_SCHNORR_H_
#define PROVLEDGER_CRYPTO_SCHNORR_H_

#include <string>
#include <vector>

#include "crypto/ec.h"
#include "crypto/sha256.h"

namespace provledger {
namespace crypto {

/// \brief Public verification key (a curve point).
struct PublicKey {
  AffinePoint point;

  /// 33-byte compressed encoding.
  Bytes Encode() const { return point.EncodeCompressed(); }
  static Result<PublicKey> Decode(const Bytes& data);
  /// Stable identity string (hex of compressed point) — used as on-ledger
  /// agent/node identity throughout ProvLedger.
  std::string ToId() const;

  bool operator==(const PublicKey& o) const { return point == o.point; }
};

/// \brief Schnorr signature: commitment point R and response scalar s.
struct Signature {
  AffinePoint r;
  U256 s;

  /// 65-byte serialization (33-byte R || 32-byte s).
  Bytes Encode() const;
  static Result<Signature> Decode(const Bytes& data);
};

/// \brief Signing key; generates deterministic (RFC6979-style) nonces.
class PrivateKey {
 public:
  /// Derive a keypair deterministically from seed bytes (test-friendly).
  static PrivateKey FromSeed(const Bytes& seed);
  /// Derive from a string label, e.g. "hospital-A".
  static PrivateKey FromSeed(const std::string& seed);

  const PublicKey& public_key() const { return public_key_; }

  /// Sign a message (its SHA-256 is taken internally).
  Signature Sign(const Bytes& message) const;
  Signature Sign(const std::string& message) const;

 private:
  PrivateKey() = default;

  U256 secret_;
  PublicKey public_key_;
};

/// \brief Verify `sig` on `message` under `key`.
bool Verify(const PublicKey& key, const Bytes& message, const Signature& sig);
bool Verify(const PublicKey& key, const std::string& message,
            const Signature& sig);

/// \brief An m-of-n multi-signature: independent signatures from a committee
/// (notary scheme primitive; RQ3). Not an aggregate signature — the survey's
/// notary schemes verify each notary independently.
struct MultiSignature {
  std::vector<std::pair<PublicKey, Signature>> parts;
};

/// \brief True iff at least `threshold` distinct committee members produced
/// valid signatures over `message`.
bool VerifyThreshold(const std::vector<PublicKey>& committee,
                     size_t threshold, const Bytes& message,
                     const MultiSignature& multisig);

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_SCHNORR_H_
