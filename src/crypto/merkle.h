// Binary Merkle tree with inclusion proofs.
//
// Used for: block transaction roots (Figure 2), SPV-style cross-chain
// transaction verification (relay chains), auditor verification of anchored
// provenance (ProvChain), and the per-case integrity forest (ForensiBlock).
//
// Odd levels duplicate the last node (Bitcoin convention). Leaves are hashed
// with a 0x00 domain-separation prefix and interior nodes with 0x01 to
// prevent second-preimage attacks that splice subtrees as leaves.
//
// Thread safety: building a MerkleTree is single-owner; a fully built tree
// is immutable and its const queries are safe concurrently.

#ifndef PROVLEDGER_CRYPTO_MERKLE_H_
#define PROVLEDGER_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "common/codec.h"
#include "crypto/sha256.h"

namespace provledger {
namespace crypto {

/// \brief One step of a Merkle inclusion proof: sibling digest plus which
/// side of the concatenation the sibling sits on.
struct MerkleProofStep {
  Digest sibling;
  bool sibling_on_left = false;
};

/// \brief Inclusion proof for one leaf; verify with MerkleTree::VerifyProof.
struct MerkleProof {
  uint64_t leaf_index = 0;
  std::vector<MerkleProofStep> steps;

  void EncodeTo(Encoder* enc) const;
  static Result<MerkleProof> DecodeFrom(Decoder* dec);
};

/// \brief Immutable binary Merkle tree built over a list of leaf payloads.
class MerkleTree {
 public:
  /// Build over raw leaf payloads (each is leaf-hashed internally).
  static MerkleTree Build(const std::vector<Bytes>& leaves);
  /// Build over already-computed leaf digests (domain prefix still applied
  /// uniformly at the layer above, so pass payload hashes consistently).
  static MerkleTree BuildFromDigests(const std::vector<Digest>& leaf_digests);

  /// Root digest; ZeroDigest() for an empty tree.
  const Digest& root() const { return root_; }
  size_t leaf_count() const { return leaf_count_; }
  bool empty() const { return leaf_count_ == 0; }

  /// Inclusion proof for the leaf at `index`.
  Result<MerkleProof> Prove(uint64_t index) const;

  /// \brief Verify that `leaf_payload` is included under `root` via `proof`.
  static bool VerifyProof(const Digest& root, const Bytes& leaf_payload,
                          const MerkleProof& proof);
  /// Verify against a precomputed leaf digest.
  static bool VerifyProofDigest(const Digest& root, const Digest& leaf_digest,
                                const MerkleProof& proof);

  /// Leaf digest for a payload (0x00-prefixed hash).
  static Digest LeafHash(const Bytes& payload);
  /// Interior digest for two children (0x01-prefixed hash).
  static Digest NodeHash(const Digest& left, const Digest& right);

 private:
  MerkleTree() = default;

  // levels_[0] = leaf digests, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_ = ZeroDigest();
  size_t leaf_count_ = 0;
};

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_MERKLE_H_
