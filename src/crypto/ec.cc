#include "crypto/ec.h"

#include "crypto/sha256.h"

namespace provledger {
namespace crypto {

namespace {
const U256& CurveB() {
  static const U256 b = U256::FromU64(7);
  return b;
}

// x³ + 7 mod p.
U256 CurveRhs(const U256& x) {
  return FieldAdd(FieldMul(FieldSqr(x), x), CurveB());
}
}  // namespace

bool AffinePoint::operator==(const AffinePoint& o) const {
  if (infinity || o.infinity) return infinity == o.infinity;
  return x == o.x && y == o.y;
}

bool AffinePoint::IsOnCurve() const {
  if (infinity) return true;
  return FieldSqr(y) == CurveRhs(x);
}

Bytes AffinePoint::EncodeCompressed() const {
  if (infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(33);
  out.push_back(y.IsOdd() ? 0x03 : 0x02);
  Bytes xb = x.ToBytesBE();
  out.insert(out.end(), xb.begin(), xb.end());
  return out;
}

Result<AffinePoint> AffinePoint::DecodeCompressed(const Bytes& data) {
  if (data.size() == 1 && data[0] == 0x00) {
    AffinePoint p;
    p.infinity = true;
    return p;
  }
  if (data.size() != 33 || (data[0] != 0x02 && data[0] != 0x03)) {
    return Status::InvalidArgument("bad compressed point encoding");
  }
  AffinePoint p;
  p.x = U256::FromBytesBE(data.data() + 1);
  if (Cmp(p.x, FieldP()) >= 0) {
    return Status::InvalidArgument("point x out of field range");
  }
  U256 rhs = CurveRhs(p.x);
  U256 y = FieldSqrt(rhs);
  if (FieldSqr(y) != rhs) {
    return Status::InvalidArgument("x has no point on the curve");
  }
  bool want_odd = data[0] == 0x03;
  if (y.IsOdd() != want_odd) y = FieldSub(U256::Zero(), y);
  p.y = y;
  return p;
}

JacobianPoint JacobianPoint::Infinity() {
  JacobianPoint p;
  p.x = U256::One();
  p.y = U256::One();
  p.z = U256::Zero();
  return p;
}

JacobianPoint JacobianPoint::FromAffine(const AffinePoint& p) {
  if (p.infinity) return Infinity();
  JacobianPoint j;
  j.x = p.x;
  j.y = p.y;
  j.z = U256::One();
  return j;
}

AffinePoint JacobianPoint::ToAffine() const {
  AffinePoint out;
  if (IsInfinity()) {
    out.infinity = true;
    return out;
  }
  U256 zinv = FieldInv(z);
  U256 zinv2 = FieldSqr(zinv);
  out.x = FieldMul(x, zinv2);
  out.y = FieldMul(y, FieldMul(zinv2, zinv));
  return out;
}

JacobianPoint EcDouble(const JacobianPoint& p) {
  if (p.IsInfinity() || p.y.IsZero()) return JacobianPoint::Infinity();
  // dbl-2009-l formulas for a = 0.
  U256 a = FieldSqr(p.x);                       // A = X1²
  U256 b = FieldSqr(p.y);                       // B = Y1²
  U256 c = FieldSqr(b);                         // C = B²
  U256 t = FieldSqr(FieldAdd(p.x, b));          // (X1+B)²
  U256 d = FieldAdd(FieldSub(FieldSub(t, a), c),
                    FieldSub(FieldSub(t, a), c));  // D = 2((X1+B)²-A-C)
  U256 e = FieldAdd(FieldAdd(a, a), a);         // E = 3A
  U256 f = FieldSqr(e);                         // F = E²
  JacobianPoint out;
  out.x = FieldSub(f, FieldAdd(d, d));          // X3 = F - 2D
  U256 c8 = FieldAdd(FieldAdd(FieldAdd(c, c), FieldAdd(c, c)),
                     FieldAdd(FieldAdd(c, c), FieldAdd(c, c)));  // 8C
  out.y = FieldSub(FieldMul(e, FieldSub(d, out.x)), c8);
  out.z = FieldMul(FieldAdd(p.y, p.y), p.z);    // Z3 = 2 Y1 Z1
  return out;
}

JacobianPoint EcAdd(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;

  U256 z1z1 = FieldSqr(p.z);
  U256 z2z2 = FieldSqr(q.z);
  U256 u1 = FieldMul(p.x, z2z2);
  U256 u2 = FieldMul(q.x, z1z1);
  U256 s1 = FieldMul(p.y, FieldMul(z2z2, q.z));
  U256 s2 = FieldMul(q.y, FieldMul(z1z1, p.z));

  if (u1 == u2) {
    if (s1 != s2) return JacobianPoint::Infinity();
    return EcDouble(p);
  }

  U256 h = FieldSub(u2, u1);
  U256 r = FieldSub(s2, s1);
  U256 h2 = FieldSqr(h);
  U256 h3 = FieldMul(h2, h);
  U256 u1h2 = FieldMul(u1, h2);

  JacobianPoint out;
  out.x = FieldSub(FieldSub(FieldSqr(r), h3), FieldAdd(u1h2, u1h2));
  out.y = FieldSub(FieldMul(r, FieldSub(u1h2, out.x)), FieldMul(s1, h3));
  out.z = FieldMul(FieldMul(p.z, q.z), h);
  return out;
}

JacobianPoint EcAddAffine(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) return p;
  return EcAdd(p, JacobianPoint::FromAffine(q));
}

JacobianPoint EcScalarMul(const U256& k, const AffinePoint& p) {
  JacobianPoint acc = JacobianPoint::Infinity();
  if (p.infinity || k.IsZero()) return acc;
  size_t bits = k.BitLength();
  for (size_t i = bits; i-- > 0;) {
    acc = EcDouble(acc);
    if (k.Bit(i)) acc = EcAddAffine(acc, p);
  }
  return acc;
}

const AffinePoint& Generator() {
  static const AffinePoint g = [] {
    AffinePoint p;
    p.x = U256::FromHex(
        "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
    p.y = U256::FromHex(
        "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
    return p;
  }();
  return g;
}

JacobianPoint EcBaseMul(const U256& k) { return EcScalarMul(k, Generator()); }

AffinePoint HashToCurve(const Bytes& seed) {
  // Try-and-increment: x = SHA256(seed || ctr) until x³+7 is a square.
  for (uint32_t ctr = 0;; ++ctr) {
    Sha256 h;
    h.Update(seed);
    uint8_t ctr_bytes[4] = {static_cast<uint8_t>(ctr >> 24),
                            static_cast<uint8_t>(ctr >> 16),
                            static_cast<uint8_t>(ctr >> 8),
                            static_cast<uint8_t>(ctr)};
    h.Update(ctr_bytes, 4);
    Digest d = h.Finish();
    U256 x = U256::FromBytesBE(d.data());
    if (Cmp(x, FieldP()) >= 0) continue;
    U256 rhs = CurveRhs(x);
    U256 y = FieldSqrt(rhs);
    if (FieldSqr(y) == rhs) {
      AffinePoint p;
      p.x = x;
      p.y = y.IsOdd() ? y : FieldSub(U256::Zero(), y);  // canonical: odd y
      return p;
    }
  }
}

}  // namespace crypto
}  // namespace provledger
