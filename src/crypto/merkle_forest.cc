#include "crypto/merkle_forest.h"

namespace provledger {
namespace crypto {

uint64_t MerkleForest::Append(const std::string& partition,
                              const Bytes& payload) {
  auto& leaves = partitions_[partition];
  leaves.push_back(MerkleTree::LeafHash(payload));
  return leaves.size() - 1;
}

size_t MerkleForest::PartitionSize(const std::string& partition) const {
  auto it = partitions_.find(partition);
  return it == partitions_.end() ? 0 : it->second.size();
}

std::vector<std::string> MerkleForest::Partitions() const {
  std::vector<std::string> out;
  out.reserve(partitions_.size());
  for (const auto& [key, _] : partitions_) out.push_back(key);
  return out;
}

Digest MerkleForest::ForestRoot() const {
  if (partitions_.empty()) return ZeroDigest();
  std::vector<Digest> roots;
  roots.reserve(partitions_.size());
  for (const auto& [_, leaves] : partitions_) {
    roots.push_back(MerkleTree::BuildFromDigests(leaves).root());
  }
  return MerkleTree::BuildFromDigests(roots).root();
}

Result<Digest> MerkleForest::PartitionRoot(
    const std::string& partition) const {
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    return Status::NotFound("no such partition: " + partition);
  }
  return MerkleTree::BuildFromDigests(it->second).root();
}

Result<ForestProof> MerkleForest::Prove(const std::string& partition,
                                        uint64_t index) const {
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    return Status::NotFound("no such partition: " + partition);
  }
  MerkleTree partition_tree = MerkleTree::BuildFromDigests(it->second);
  PROVLEDGER_ASSIGN_OR_RETURN(MerkleProof leaf_proof,
                              partition_tree.Prove(index));

  // Build top tree and locate this partition's position in sorted order.
  std::vector<Digest> roots;
  uint64_t partition_index = 0;
  uint64_t i = 0;
  for (const auto& [key, leaves] : partitions_) {
    if (key == partition) partition_index = i;
    roots.push_back(MerkleTree::BuildFromDigests(leaves).root());
    ++i;
  }
  MerkleTree top = MerkleTree::BuildFromDigests(roots);
  PROVLEDGER_ASSIGN_OR_RETURN(MerkleProof partition_proof,
                              top.Prove(partition_index));

  ForestProof proof;
  proof.partition = partition;
  proof.leaf_proof = std::move(leaf_proof);
  proof.partition_root = partition_tree.root();
  proof.partition_proof = std::move(partition_proof);
  return proof;
}

bool MerkleForest::Verify(const Digest& forest_root, const Bytes& payload,
                          const ForestProof& proof) {
  // Record must hash up to the claimed partition root...
  if (!MerkleTree::VerifyProof(proof.partition_root, payload,
                               proof.leaf_proof)) {
    return false;
  }
  // ...and the partition root must hash up to the forest root.
  return MerkleTree::VerifyProofDigest(forest_root, proof.partition_root,
                                       proof.partition_proof);
}

}  // namespace crypto
}  // namespace provledger
