#include "crypto/pedersen.h"

namespace provledger {
namespace crypto {

namespace {

// U256 with only bit `i` set (2^i).
U256 Pow2(uint32_t i) {
  U256 out;
  out.limb[i / 64] = 1ULL << (i % 64);
  return out;
}

AffinePoint EcNeg(const AffinePoint& p) {
  if (p.infinity) return p;
  AffinePoint out = p;
  out.y = FieldSub(U256::Zero(), p.y);
  return out;
}

AffinePoint EcAddAff(const AffinePoint& a, const AffinePoint& b) {
  return EcAdd(JacobianPoint::FromAffine(a), JacobianPoint::FromAffine(b))
      .ToAffine();
}

AffinePoint EcSubAff(const AffinePoint& a, const AffinePoint& b) {
  return EcAddAff(a, EcNeg(b));
}

AffinePoint MulAff(const U256& k, const AffinePoint& p) {
  return EcScalarMul(k, p).ToAffine();
}

// Deterministic per-proof scalar: H(seed || tag || index) mod n, nonzero.
U256 DeriveScalar(const Bytes& seed, const char* tag, uint32_t index) {
  Sha256 h;
  h.Update(seed);
  h.Update(std::string_view(tag));
  uint8_t idx[4] = {static_cast<uint8_t>(index >> 24),
                    static_cast<uint8_t>(index >> 16),
                    static_cast<uint8_t>(index >> 8),
                    static_cast<uint8_t>(index)};
  h.Update(idx, 4);
  Digest d = h.Finish();
  U256 v = ReduceMod(U256::FromBytesBE(d.data()), OrderN());
  if (v.IsZero()) v = U256::One();
  return v;
}

// Fiat–Shamir challenge for one bit proof.
U256 BitChallenge(const AffinePoint& c, const AffinePoint& a0,
                  const AffinePoint& a1) {
  Bytes buf;
  AppendBytes(&buf, c.EncodeCompressed());
  AppendBytes(&buf, a0.EncodeCompressed());
  AppendBytes(&buf, a1.EncodeCompressed());
  Digest d = Sha256::Hash(buf);
  return ReduceMod(U256::FromBytesBE(d.data()), OrderN());
}

}  // namespace

const PedersenParams& PedersenParams::Default() {
  static const PedersenParams params = [] {
    PedersenParams p;
    p.g = Generator();
    p.h = HashToCurve(ToBytes("provledger/pedersen/h/v1"));
    return p;
  }();
  return params;
}

AffinePoint PedersenCommit(const U256& value, const U256& blinding,
                           const PedersenParams& params) {
  JacobianPoint vg = EcScalarMul(value, params.g);
  JacobianPoint rh = EcScalarMul(blinding, params.h);
  return EcAdd(vg, rh).ToAffine();
}

U256 InvModOrder(const U256& a) {
  U256 n_minus_2;
  SubWithBorrow(OrderN(), U256::FromU64(2), &n_minus_2);
  return ExpMod(a, n_minus_2, OrderN());
}

size_t RangeProof::EncodedSize() const {
  // commitment (33) + bits (4) + per-bit: C_i (33) + A0/A1 (66) + 4 scalars.
  return 33 + 4 + bit_commitments.size() * 33 +
         bit_proofs.size() * (66 + 4 * 32);
}

Result<RangeProof> Zkrp::Prove(uint64_t value, const U256& blinding,
                               uint32_t bits, const Bytes& nonce_seed,
                               const PedersenParams& params) {
  if (bits == 0 || bits > 64) {
    return Status::InvalidArgument("range width must be in [1, 64]");
  }
  if (bits < 64 && value >= (1ULL << bits)) {
    return Status::InvalidArgument("value outside the provable range");
  }

  const U256& n = OrderN();
  RangeProof proof;
  proof.bits = bits;
  proof.commitment = PedersenCommit(U256::FromU64(value), blinding, params);

  // Per-bit blindings r_i with Σ 2^i·r_i ≡ blinding (mod n): draw all but
  // the last at random, then solve for the last.
  std::vector<U256> r(bits);
  U256 acc = U256::Zero();
  for (uint32_t i = 0; i + 1 < bits; ++i) {
    r[i] = DeriveScalar(nonce_seed, "blind", i);
    acc = AddMod(acc, MulMod(Pow2(i), r[i], n), n);
  }
  U256 remainder = SubMod(ReduceMod(blinding, n), acc, n);
  r[bits - 1] = MulMod(remainder, InvModOrder(Pow2(bits - 1)), n);

  proof.bit_commitments.resize(bits);
  proof.bit_proofs.resize(bits);

  for (uint32_t i = 0; i < bits; ++i) {
    const bool bit = (value >> i) & 1;
    const AffinePoint ci =
        PedersenCommit(bit ? U256::One() : U256::Zero(), r[i], params);
    proof.bit_commitments[i] = ci;

    BitProof& bp = proof.bit_proofs[i];
    const U256 w = DeriveScalar(nonce_seed, "w", i);
    if (!bit) {
      // Real branch: C_i = r_i·H. Simulate the "bit = 1" branch.
      bp.a0 = MulAff(w, params.h);
      bp.e1 = DeriveScalar(nonce_seed, "fake-e", i);
      bp.s1 = DeriveScalar(nonce_seed, "fake-s", i);
      const AffinePoint ci_minus_g = EcSubAff(ci, params.g);
      bp.a1 = EcSubAff(MulAff(bp.s1, params.h), MulAff(bp.e1, ci_minus_g));
      const U256 e = BitChallenge(ci, bp.a0, bp.a1);
      bp.e0 = SubMod(e, bp.e1, n);
      bp.s0 = AddMod(w, MulMod(bp.e0, r[i], n), n);
    } else {
      // Real branch: C_i − G = r_i·H. Simulate the "bit = 0" branch.
      bp.a1 = MulAff(w, params.h);
      bp.e0 = DeriveScalar(nonce_seed, "fake-e", i);
      bp.s0 = DeriveScalar(nonce_seed, "fake-s", i);
      bp.a0 = EcSubAff(MulAff(bp.s0, params.h), MulAff(bp.e0, ci));
      const U256 e = BitChallenge(ci, bp.a0, bp.a1);
      bp.e1 = SubMod(e, bp.e0, n);
      bp.s1 = AddMod(w, MulMod(bp.e1, r[i], n), n);
    }
  }
  return proof;
}

bool Zkrp::Verify(const RangeProof& proof, const PedersenParams& params) {
  if (proof.bits == 0 || proof.bits > 64) return false;
  if (proof.bit_commitments.size() != proof.bits ||
      proof.bit_proofs.size() != proof.bits) {
    return false;
  }
  const U256& n = OrderN();

  for (uint32_t i = 0; i < proof.bits; ++i) {
    const AffinePoint& ci = proof.bit_commitments[i];
    const BitProof& bp = proof.bit_proofs[i];

    // Challenge split must be consistent with Fiat–Shamir.
    const U256 e = BitChallenge(ci, bp.a0, bp.a1);
    if (AddMod(bp.e0, bp.e1, n) != e) return false;

    // Branch 0: s0·H == A0 + e0·C_i.
    const AffinePoint lhs0 = MulAff(bp.s0, params.h);
    const AffinePoint rhs0 = EcAddAff(bp.a0, MulAff(bp.e0, ci));
    if (!(lhs0 == rhs0)) return false;

    // Branch 1: s1·H == A1 + e1·(C_i − G).
    const AffinePoint ci_minus_g = EcSubAff(ci, params.g);
    const AffinePoint lhs1 = MulAff(bp.s1, params.h);
    const AffinePoint rhs1 = EcAddAff(bp.a1, MulAff(bp.e1, ci_minus_g));
    if (!(lhs1 == rhs1)) return false;
  }

  // Recomposition: Σ 2^i·C_i == C, evaluated Horner-style from the top bit.
  JacobianPoint acc = JacobianPoint::Infinity();
  for (uint32_t i = proof.bits; i-- > 0;) {
    acc = EcDouble(acc);
    acc = EcAddAffine(acc, proof.bit_commitments[i]);
  }
  return acc.ToAffine() == proof.commitment;
}

Result<Zkrp::IntervalProof> Zkrp::ProveInterval(uint64_t value, uint64_t lo,
                                                uint64_t hi,
                                                const U256& blinding,
                                                uint32_t bits,
                                                const Bytes& nonce_seed,
                                                const PedersenParams& params) {
  if (lo > hi || value < lo || value > hi) {
    return Status::InvalidArgument("value outside [lo, hi]");
  }
  IntervalProof out;
  out.lo = lo;
  out.hi = hi;
  out.value_commitment =
      PedersenCommit(U256::FromU64(value), blinding, params);

  // Lower: (v − lo) committed under C − lo·G with the same blinding.
  Bytes lower_seed = nonce_seed;
  AppendBytes(&lower_seed, "/lower");
  PROVLEDGER_ASSIGN_OR_RETURN(
      out.lower, Prove(value - lo, blinding, bits, lower_seed, params));

  // Upper: (hi − v) committed under hi·G − C with blinding −r (mod n).
  Bytes upper_seed = nonce_seed;
  AppendBytes(&upper_seed, "/upper");
  U256 neg_r = SubMod(U256::Zero(), ReduceMod(blinding, OrderN()), OrderN());
  PROVLEDGER_ASSIGN_OR_RETURN(
      out.upper, Prove(hi - value, neg_r, bits, upper_seed, params));
  return out;
}

bool Zkrp::VerifyInterval(const IntervalProof& proof,
                          const PedersenParams& params) {
  if (proof.lo > proof.hi) return false;
  // The sub-proof commitments must be derivable from the public commitment:
  // C_lower = C − lo·G, C_upper = hi·G − C.
  const AffinePoint expected_lower = EcSubAff(
      proof.value_commitment, MulAff(U256::FromU64(proof.lo), params.g));
  const AffinePoint expected_upper = EcSubAff(
      MulAff(U256::FromU64(proof.hi), params.g), proof.value_commitment);
  if (!(proof.lower.commitment == expected_lower)) return false;
  if (!(proof.upper.commitment == expected_upper)) return false;
  return Verify(proof.lower, params) && Verify(proof.upper, params);
}

}  // namespace crypto
}  // namespace provledger
