#include "crypto/merkle.h"

namespace provledger {
namespace crypto {

void MerkleProof::EncodeTo(Encoder* enc) const {
  enc->PutU64(leaf_index);
  enc->PutU32(static_cast<uint32_t>(steps.size()));
  for (const auto& s : steps) {
    enc->PutRaw(Bytes(s.sibling.begin(), s.sibling.end()));
    enc->PutBool(s.sibling_on_left);
  }
}

Result<MerkleProof> MerkleProof::DecodeFrom(Decoder* dec) {
  MerkleProof proof;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU64(&proof.leaf_index));
  uint32_t n;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
  // Bound the count against the bytes actually present before allocating:
  // each step consumes at least 33 bytes (32 sibling + 1 side flag), so a
  // forged count can never drive an allocation past the input size. Proof
  // bytes arrive from untrusted peers via LineageProof decoding.
  if (n > dec->remaining() / (kSha256DigestSize + 1)) {
    return Status::Corruption("merkle proof step count exceeds input");
  }
  proof.steps.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    Bytes raw;
    PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(kSha256DigestSize, &raw));
    PROVLEDGER_ASSIGN_OR_RETURN(proof.steps[i].sibling, DigestFromBytes(raw));
    PROVLEDGER_RETURN_NOT_OK(dec->GetBool(&proof.steps[i].sibling_on_left));
  }
  return proof;
}

Digest MerkleTree::LeafHash(const Bytes& payload) {
  Sha256 h;
  uint8_t prefix = 0x00;
  h.Update(&prefix, 1);
  h.Update(payload);
  return h.Finish();
}

Digest MerkleTree::NodeHash(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t prefix = 0x01;
  h.Update(&prefix, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

MerkleTree MerkleTree::Build(const std::vector<Bytes>& leaves) {
  std::vector<Digest> digests;
  digests.reserve(leaves.size());
  for (const auto& leaf : leaves) digests.push_back(LeafHash(leaf));
  return BuildFromDigests(digests);
}

MerkleTree MerkleTree::BuildFromDigests(
    const std::vector<Digest>& leaf_digests) {
  MerkleTree tree;
  tree.leaf_count_ = leaf_digests.size();
  if (leaf_digests.empty()) return tree;

  tree.levels_.push_back(leaf_digests);
  while (tree.levels_.back().size() > 1) {
    const auto& prev = tree.levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const Digest& left = prev[i];
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(NodeHash(left, right));
    }
    tree.levels_.push_back(std::move(next));
  }
  tree.root_ = tree.levels_.back()[0];
  return tree;
}

Result<MerkleProof> MerkleTree::Prove(uint64_t index) const {
  if (index >= leaf_count_) {
    return Status::InvalidArgument("merkle proof index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  uint64_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    uint64_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleProofStep step;
    step.sibling_on_left = (pos % 2 == 1);
    // Odd level: last node is its own sibling (duplicated).
    step.sibling = (sibling < nodes.size()) ? nodes[sibling] : nodes[pos];
    proof.steps.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProofDigest(const Digest& root,
                                   const Digest& leaf_digest,
                                   const MerkleProof& proof) {
  Digest current = leaf_digest;
  for (const auto& step : proof.steps) {
    current = step.sibling_on_left ? NodeHash(step.sibling, current)
                                   : NodeHash(current, step.sibling);
  }
  return current == root;
}

bool MerkleTree::VerifyProof(const Digest& root, const Bytes& leaf_payload,
                             const MerkleProof& proof) {
  return VerifyProofDigest(root, LeafHash(leaf_payload), proof);
}

}  // namespace crypto
}  // namespace provledger
