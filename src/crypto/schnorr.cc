#include "crypto/schnorr.h"

#include <set>

namespace provledger {
namespace crypto {

namespace {
// Hash to a nonzero scalar mod n.
U256 HashToScalar(const Bytes& data) {
  Digest d = Sha256::Hash(data);
  U256 v = U256::FromBytesBE(d.data());
  v = ReduceMod(v, OrderN());
  if (v.IsZero()) v = U256::One();
  return v;
}

// Challenge e = H(enc(R) || enc(P) || m) mod n.
U256 Challenge(const AffinePoint& r, const PublicKey& pub,
               const Bytes& message) {
  Bytes buf;
  AppendBytes(&buf, r.EncodeCompressed());
  AppendBytes(&buf, pub.Encode());
  AppendBytes(&buf, message);
  return HashToScalar(buf);
}
}  // namespace

Result<PublicKey> PublicKey::Decode(const Bytes& data) {
  PROVLEDGER_ASSIGN_OR_RETURN(AffinePoint p, AffinePoint::DecodeCompressed(data));
  if (p.infinity) return Status::InvalidArgument("public key is infinity");
  PublicKey key;
  key.point = p;
  return key;
}

std::string PublicKey::ToId() const { return HexEncode(Encode()); }

Bytes Signature::Encode() const {
  Bytes out = r.EncodeCompressed();
  Bytes sb = s.ToBytesBE();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

Result<Signature> Signature::Decode(const Bytes& data) {
  if (data.size() != 65) {
    return Status::InvalidArgument("signature must be 65 bytes");
  }
  Signature sig;
  Bytes rb(data.begin(), data.begin() + 33);
  PROVLEDGER_ASSIGN_OR_RETURN(sig.r, AffinePoint::DecodeCompressed(rb));
  sig.s = U256::FromBytesBE(data.data() + 33);
  return sig;
}

PrivateKey PrivateKey::FromSeed(const Bytes& seed) {
  PrivateKey key;
  // Expand the seed until we land in [1, n-1] (overwhelmingly first try).
  Bytes material = seed;
  for (;;) {
    Digest d = Sha256::Hash(material);
    U256 candidate = U256::FromBytesBE(d.data());
    if (!candidate.IsZero() && Cmp(candidate, OrderN()) < 0) {
      key.secret_ = candidate;
      break;
    }
    material.assign(d.begin(), d.end());
  }
  key.public_key_.point = EcBaseMul(key.secret_).ToAffine();
  return key;
}

PrivateKey PrivateKey::FromSeed(const std::string& seed) {
  return FromSeed(ToBytes(seed));
}

Signature PrivateKey::Sign(const Bytes& message) const {
  // Deterministic nonce: k = HMAC(secret, message) mod n (RFC6979 spirit).
  Digest kd = HmacSha256(secret_.ToBytesBE(), message);
  U256 k = U256::FromBytesBE(kd.data());
  k = ReduceMod(k, OrderN());
  if (k.IsZero()) k = U256::One();

  Signature sig;
  sig.r = EcBaseMul(k).ToAffine();
  U256 e = Challenge(sig.r, public_key_, message);
  // s = k + e·d (mod n)
  sig.s = AddMod(k, MulMod(e, secret_, OrderN()), OrderN());
  return sig;
}

Signature PrivateKey::Sign(const std::string& message) const {
  return Sign(ToBytes(message));
}

bool Verify(const PublicKey& key, const Bytes& message, const Signature& sig) {
  if (sig.r.infinity || key.point.infinity) return false;
  if (Cmp(sig.s, OrderN()) >= 0) return false;
  if (!sig.r.IsOnCurve() || !key.point.IsOnCurve()) return false;

  U256 e = Challenge(sig.r, key, message);
  // Check s·G == R + e·P.
  JacobianPoint lhs = EcBaseMul(sig.s);
  JacobianPoint rhs =
      EcAdd(JacobianPoint::FromAffine(sig.r), EcScalarMul(e, key.point));
  return lhs.ToAffine() == rhs.ToAffine();
}

bool Verify(const PublicKey& key, const std::string& message,
            const Signature& sig) {
  return Verify(key, ToBytes(message), sig);
}

bool VerifyThreshold(const std::vector<PublicKey>& committee, size_t threshold,
                     const Bytes& message, const MultiSignature& multisig) {
  std::set<std::string> seen;
  size_t valid = 0;
  for (const auto& [key, sig] : multisig.parts) {
    // Signer must be a committee member, counted once.
    bool member = false;
    for (const auto& c : committee) {
      if (c == key) {
        member = true;
        break;
      }
    }
    if (!member) continue;
    std::string id = key.ToId();
    if (seen.count(id)) continue;
    if (Verify(key, message, sig)) {
      seen.insert(id);
      ++valid;
      if (valid >= threshold) return true;
    }
  }
  return valid >= threshold;
}

}  // namespace crypto
}  // namespace provledger
