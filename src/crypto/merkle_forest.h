// Distributed Merkle forest (ForensiBlock): one incremental Merkle tree per
// partition key (e.g. per forensic case, per workflow, per product batch),
// plus a top tree over the per-partition roots. Verifying one record needs a
// proof in its partition tree plus a proof of the partition root in the top
// tree — O(log n_partition + log n_partitions) instead of O(log n_total) over
// a single interleaved tree, and partitions can be verified independently,
// which is the property ForensiBlock exploits for per-case integrity checks.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CRYPTO_MERKLE_FOREST_H_
#define PROVLEDGER_CRYPTO_MERKLE_FOREST_H_

#include <map>
#include <string>
#include <vector>

#include "crypto/merkle.h"

namespace provledger {
namespace crypto {

/// \brief Two-level proof: record within partition, partition within forest.
struct ForestProof {
  std::string partition;
  MerkleProof leaf_proof;       // leaf within the partition tree
  Digest partition_root;        // root of the partition tree
  MerkleProof partition_proof;  // partition root within the top tree
};

/// \brief Append-only forest of per-partition Merkle trees.
class MerkleForest {
 public:
  /// Append a record payload to `partition` (created on first use).
  /// Returns the index of the record inside its partition.
  uint64_t Append(const std::string& partition, const Bytes& payload);

  /// Number of records in a partition (0 if absent).
  size_t PartitionSize(const std::string& partition) const;
  /// All partition keys, sorted.
  std::vector<std::string> Partitions() const;

  /// Root over all partition roots (keys sorted lexicographically so the
  /// forest root is canonical). ZeroDigest() when empty.
  Digest ForestRoot() const;
  /// Root of one partition's tree.
  Result<Digest> PartitionRoot(const std::string& partition) const;

  /// Two-level inclusion proof for record `index` of `partition`.
  Result<ForestProof> Prove(const std::string& partition,
                            uint64_t index) const;

  /// Verify a two-level proof against a forest root.
  static bool Verify(const Digest& forest_root, const Bytes& payload,
                     const ForestProof& proof);

 private:
  // Payload leaf digests per partition; trees are rebuilt on demand. Using
  // std::map keeps partitions sorted for a canonical top-tree order.
  std::map<std::string, std::vector<Digest>> partitions_;
};

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_MERKLE_FOREST_H_
