// Fixed-width 256-bit unsigned arithmetic, written from scratch for the
// signature / commitment substrate. Two tiers:
//   * generic modular arithmetic (AddMod/SubMod/MulMod/ExpMod) for work
//     modulo the secp256k1 group order n, and
//   * a fast path for the secp256k1 field prime p = 2^256 - 2^32 - 977,
//     exploiting 2^256 ≡ 2^32 + 977 (mod p) for O(1)-fold reduction.
//
// Thread safety: plain value type — distinct instances are independent;
// concurrent const access to one instance is safe.

#ifndef PROVLEDGER_CRYPTO_U256_H_
#define PROVLEDGER_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace provledger {
namespace crypto {

/// \brief 256-bit unsigned integer; limbs little-endian (limb[0] lowest).
struct U256 {
  std::array<uint64_t, 4> limb{0, 0, 0, 0};

  static U256 Zero() { return U256{}; }
  static U256 One() { return FromU64(1); }
  static U256 FromU64(uint64_t v);
  /// Parse exactly 64 hex characters (big-endian).
  static U256 FromHex(const char* hex64);
  /// Interpret a 32-byte big-endian buffer.
  static U256 FromBytesBE(const uint8_t* data);

  /// 32-byte big-endian serialization.
  Bytes ToBytesBE() const;
  std::string ToHex() const;

  bool IsZero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  bool IsOdd() const { return limb[0] & 1; }
  /// Value of bit i (0 = least significant).
  bool Bit(size_t i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }
  /// Index of highest set bit + 1 (0 for zero).
  size_t BitLength() const;

  bool operator==(const U256& o) const { return limb == o.limb; }
  bool operator!=(const U256& o) const { return !(*this == o); }
};

/// -1 / 0 / +1 three-way comparison.
int Cmp(const U256& a, const U256& b);

/// a + b mod 2^256; returns carry-out.
uint64_t AddWithCarry(const U256& a, const U256& b, U256* out);
/// a - b mod 2^256; returns borrow-out.
uint64_t SubWithBorrow(const U256& a, const U256& b, U256* out);

/// \name Generic modular arithmetic. Operands must already be < m.
/// @{
U256 AddMod(const U256& a, const U256& b, const U256& m);
U256 SubMod(const U256& a, const U256& b, const U256& m);
/// Double-and-add multiplication; O(256) AddMod steps. Used only for the
/// (rare) scalar operations modulo the group order.
U256 MulMod(const U256& a, const U256& b, const U256& m);
U256 ExpMod(const U256& base, const U256& exp, const U256& m);
/// Reduce an arbitrary 256-bit value (e.g. a hash) modulo m (m > 2^255 in
/// all our uses, so at most one subtraction).
U256 ReduceMod(const U256& a, const U256& m);
/// @}

/// \name secp256k1 field arithmetic (mod p = 2^256 - 2^32 - 977).
/// @{
/// The field prime.
const U256& FieldP();
/// The group order n of the secp256k1 base point.
const U256& OrderN();

U256 FieldAdd(const U256& a, const U256& b);
U256 FieldSub(const U256& a, const U256& b);
/// Schoolbook 256x256 -> 512 then special-form fold; ~20 ns per call.
U256 FieldMul(const U256& a, const U256& b);
U256 FieldSqr(const U256& a);
/// Inversion via Fermat: a^(p-2).
U256 FieldInv(const U256& a);
/// Square root via a^((p+1)/4) (valid because p ≡ 3 mod 4); caller must
/// check the result squares back to the input (non-residues have none).
U256 FieldSqrt(const U256& a);
U256 FieldExp(const U256& base, const U256& exp);
/// @}

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_U256_H_
