// Pedersen commitments and bitwise zero-knowledge range proofs.
//
// This is the substrate for PrivChain-style private provenance (§4.2 of the
// paper): a supply-chain participant commits to a sensitive value (e.g. a
// location cell or a temperature reading) and proves it lies in a permitted
// range without revealing it. We implement the textbook construction —
// Pedersen commitment C = v·G + r·H plus one Cramer–Damgård–Schoenmakers
// OR-proof per bit (Fiat–Shamir transformed) — rather than Bulletproofs;
// proof size is linear in the bit width, which preserves every qualitative
// trade-off the paper discusses (DESIGN.md §3).
//
// Thread safety: stateless free functions and plain value types — safe from
// any thread.

#ifndef PROVLEDGER_CRYPTO_PEDERSEN_H_
#define PROVLEDGER_CRYPTO_PEDERSEN_H_

#include <cstdint>
#include <vector>

#include "crypto/ec.h"
#include "crypto/sha256.h"

namespace provledger {
namespace crypto {

/// \brief Commitment parameters: base points G (standard generator) and H
/// (hash-to-curve, discrete log unknown).
struct PedersenParams {
  AffinePoint g;
  AffinePoint h;

  /// Canonical parameters used across ProvLedger.
  static const PedersenParams& Default();
};

/// \brief Compute C = v·G + r·H.
AffinePoint PedersenCommit(const U256& value, const U256& blinding,
                           const PedersenParams& params);

/// \brief Sigma OR-proof that a commitment opens to 0 or 1 (one per bit).
struct BitProof {
  AffinePoint a0;  // announcement for the "bit = 0" branch
  AffinePoint a1;  // announcement for the "bit = 1" branch
  U256 e0;         // split challenges (e0 + e1 == Fiat–Shamir challenge)
  U256 e1;
  U256 s0;         // responses
  U256 s1;
};

/// \brief Zero-knowledge proof that a committed value lies in [0, 2^bits).
struct RangeProof {
  AffinePoint commitment;                  // C = v·G + r·H
  uint32_t bits = 0;                       // range width
  std::vector<AffinePoint> bit_commitments;  // C_i, with Σ 2^i·C_i == C
  std::vector<BitProof> bit_proofs;

  /// Serialized size in bytes (for the storage-overhead experiments).
  size_t EncodedSize() const;
};

/// \brief Prover/verifier for [0, 2^bits) range statements.
class Zkrp {
 public:
  /// Prove that `value` ∈ [0, 2^bits). `blinding` is the commitment
  /// randomness; `nonce_seed` seeds the proof's internal randomness
  /// deterministically (distinct seeds yield distinct proofs).
  static Result<RangeProof> Prove(uint64_t value, const U256& blinding,
                                  uint32_t bits, const Bytes& nonce_seed,
                                  const PedersenParams& params =
                                      PedersenParams::Default());

  /// Verify a range proof. Checks each bit OR-proof and that the bit
  /// commitments recompose to the top-level commitment.
  static bool Verify(const RangeProof& proof,
                     const PedersenParams& params = PedersenParams::Default());

  /// \brief Prove lo ≤ value ≤ hi by proving (value − lo) ∈ [0, 2^bits) and
  /// (hi − value) ∈ [0, 2^bits) against commitments the verifier can derive
  /// from the public commitment to `value` (PrivChain's ZKRP pattern).
  struct IntervalProof {
    AffinePoint value_commitment;  // C = v·G + r·H (public)
    uint64_t lo = 0;
    uint64_t hi = 0;
    RangeProof lower;  // proves v - lo >= 0
    RangeProof upper;  // proves hi - v >= 0
  };
  static Result<IntervalProof> ProveInterval(
      uint64_t value, uint64_t lo, uint64_t hi, const U256& blinding,
      uint32_t bits, const Bytes& nonce_seed,
      const PedersenParams& params = PedersenParams::Default());
  static bool VerifyInterval(const IntervalProof& proof,
                             const PedersenParams& params =
                                 PedersenParams::Default());
};

/// \brief Modular inverse modulo the group order n (n is prime).
U256 InvModOrder(const U256& a);

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_PEDERSEN_H_
