// secp256k1 elliptic-curve group operations (y² = x³ + 7 over F_p),
// Jacobian coordinates, written from scratch on top of crypto/u256.h.
//
// This is the group underlying ProvLedger signatures (crypto/schnorr.h) and
// Pedersen commitments / range proofs (crypto/pedersen.h). Arithmetic is
// correct but variable-time; see DESIGN.md §3 on the security scope of the
// crypto substitution.
//
// Thread safety: stateless free functions over value types — safe from any
// thread.

#ifndef PROVLEDGER_CRYPTO_EC_H_
#define PROVLEDGER_CRYPTO_EC_H_

#include "crypto/u256.h"

namespace provledger {
namespace crypto {

/// \brief Curve point in affine coordinates. `infinity` is the identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  bool operator==(const AffinePoint& o) const;

  /// SEC1 compressed encoding: 0x02/0x03 || x (33 bytes); infinity -> 0x00.
  Bytes EncodeCompressed() const;
  /// Decode a compressed point; validates that it lies on the curve.
  static Result<AffinePoint> DecodeCompressed(const Bytes& data);
  /// Curve membership check (y² == x³ + 7).
  bool IsOnCurve() const;
};

/// \brief Curve point in Jacobian coordinates (X/Z², Y/Z³); Z=0 ⇒ identity.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  static JacobianPoint Infinity();
  static JacobianPoint FromAffine(const AffinePoint& p);
  AffinePoint ToAffine() const;
  bool IsInfinity() const { return z.IsZero(); }
};

/// Point doubling (a = 0 fast path).
JacobianPoint EcDouble(const JacobianPoint& p);
/// General point addition.
JacobianPoint EcAdd(const JacobianPoint& p, const JacobianPoint& q);
/// Mixed addition with an affine operand (saves field ops in scalar mult).
JacobianPoint EcAddAffine(const JacobianPoint& p, const AffinePoint& q);
/// Double-and-add scalar multiplication k·P.
JacobianPoint EcScalarMul(const U256& k, const AffinePoint& p);
/// k·G for the standard base point.
JacobianPoint EcBaseMul(const U256& k);

/// The secp256k1 base point G.
const AffinePoint& Generator();

/// \brief Deterministic hash-to-curve via try-and-increment: the returned
/// point has unknown discrete log w.r.t. G, as required for the Pedersen
/// second generator H.
AffinePoint HashToCurve(const Bytes& seed);

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_EC_H_
