#include "crypto/u256.h"

#include <cassert>
#include <cstring>

namespace provledger {
namespace crypto {

namespace {
// 2^256 ≡ kFoldC (mod p) for the secp256k1 field prime.
constexpr uint64_t kFoldC = 0x1000003D1ULL;  // 2^32 + 977

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  assert(false && "bad hex digit");
  return 0;
}
}  // namespace

U256 U256::FromU64(uint64_t v) {
  U256 out;
  out.limb[0] = v;
  return out;
}

U256 U256::FromHex(const char* hex64) {
  assert(std::strlen(hex64) == 64);
  U256 out;
  for (int limb_i = 0; limb_i < 4; ++limb_i) {
    uint64_t v = 0;
    // limb 3 is the most significant = first 16 hex chars.
    const char* start = hex64 + (3 - limb_i) * 16;
    for (int i = 0; i < 16; ++i) v = (v << 4) | HexVal(start[i]);
    out.limb[limb_i] = v;
  }
  return out;
}

U256 U256::FromBytesBE(const uint8_t* data) {
  U256 out;
  for (int limb_i = 0; limb_i < 4; ++limb_i) {
    uint64_t v = 0;
    const uint8_t* start = data + (3 - limb_i) * 8;
    for (int i = 0; i < 8; ++i) v = (v << 8) | start[i];
    out.limb[limb_i] = v;
  }
  return out;
}

Bytes U256::ToBytesBE() const {
  Bytes out(32);
  for (int limb_i = 0; limb_i < 4; ++limb_i) {
    uint64_t v = limb[limb_i];
    uint8_t* start = out.data() + (3 - limb_i) * 8;
    for (int i = 7; i >= 0; --i) {
      start[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

std::string U256::ToHex() const { return HexEncode(ToBytesBE()); }

size_t U256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) {
      size_t bits = 0;
      uint64_t v = limb[i];
      while (v != 0) {
        ++bits;
        v >>= 1;
      }
      return static_cast<size_t>(i) * 64 + bits;
    }
  }
  return 0;
}

int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

uint64_t AddWithCarry(const U256& a, const U256& b, U256* out) {
  unsigned __int128 acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += static_cast<unsigned __int128>(a.limb[i]) + b.limb[i];
    out->limb[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  return static_cast<uint64_t>(acc);
}

uint64_t SubWithBorrow(const U256& a, const U256& b, U256* out) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 lhs = a.limb[i];
    unsigned __int128 rhs = static_cast<unsigned __int128>(b.limb[i]) + borrow;
    if (lhs >= rhs) {
      out->limb[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      out->limb[i] =
          static_cast<uint64_t>((static_cast<unsigned __int128>(1) << 64) +
                                lhs - rhs);
      borrow = 1;
    }
  }
  return static_cast<uint64_t>(borrow);
}

U256 AddMod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  uint64_t carry = AddWithCarry(a, b, &sum);
  if (carry || Cmp(sum, m) >= 0) {
    U256 reduced;
    SubWithBorrow(sum, m, &reduced);
    return reduced;
  }
  return sum;
}

U256 SubMod(const U256& a, const U256& b, const U256& m) {
  if (Cmp(a, b) >= 0) {
    U256 out;
    SubWithBorrow(a, b, &out);
    return out;
  }
  U256 tmp;
  SubWithBorrow(m, b, &tmp);  // m - b
  U256 out;
  AddWithCarry(tmp, a, &out);  // (m - b) + a < m, no carry possible
  return out;
}

U256 MulMod(const U256& a, const U256& b, const U256& m) {
  // Russian-peasant: scan b from its highest set bit.
  U256 result = U256::Zero();
  U256 addend = ReduceMod(a, m);
  size_t bits = b.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = AddMod(result, result, m);  // result <<= 1 (mod m)
    if (b.Bit(i)) result = AddMod(result, addend, m);
  }
  return result;
}

U256 ExpMod(const U256& base, const U256& exp, const U256& m) {
  U256 result = U256::One();
  U256 b = ReduceMod(base, m);
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = MulMod(result, result, m);
    if (exp.Bit(i)) result = MulMod(result, b, m);
  }
  return result;
}

U256 ReduceMod(const U256& a, const U256& m) {
  U256 out = a;
  while (Cmp(out, m) >= 0) {
    U256 tmp;
    SubWithBorrow(out, m, &tmp);
    out = tmp;
  }
  return out;
}

const U256& FieldP() {
  static const U256 p = U256::FromHex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  return p;
}

const U256& OrderN() {
  static const U256 n = U256::FromHex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  return n;
}

U256 FieldAdd(const U256& a, const U256& b) { return AddMod(a, b, FieldP()); }

U256 FieldSub(const U256& a, const U256& b) { return SubMod(a, b, FieldP()); }

namespace {
// Full 256x256 -> 512-bit schoolbook multiply; w[0] is the lowest limb.
void Mul512(const U256& a, const U256& b, uint64_t w[8]) {
  std::memset(w, 0, 8 * sizeof(uint64_t));
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 acc = static_cast<unsigned __int128>(a.limb[i]) *
                                  b.limb[j] +
                              w[i + j] + carry;
      w[i + j] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    w[i + 4] += carry;
  }
}

// Reduce a 512-bit value mod the secp256k1 field prime using
// 2^256 ≡ kFoldC (mod p), folding twice then subtracting p as needed.
U256 FieldReduce512(const uint64_t w[8]) {
  // t (5 limbs) = lo + hi * kFoldC.
  uint64_t t[5] = {w[0], w[1], w[2], w[3], 0};
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 acc =
        static_cast<unsigned __int128>(w[4 + i]) * kFoldC + t[i] + carry;
    t[i] = static_cast<uint64_t>(acc);
    carry = static_cast<uint64_t>(acc >> 64);
  }
  t[4] = carry;

  // Second fold: t[4] * 2^256 ≡ t[4] * kFoldC.
  U256 r;
  unsigned __int128 acc = static_cast<unsigned __int128>(t[4]) * kFoldC + t[0];
  r.limb[0] = static_cast<uint64_t>(acc);
  acc >>= 64;
  for (int i = 1; i < 4; ++i) {
    acc += t[i];
    r.limb[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  // A final carry here represents one more 2^256 ≡ kFoldC.
  if (acc != 0) {
    unsigned __int128 acc2 =
        static_cast<unsigned __int128>(r.limb[0]) + kFoldC;
    r.limb[0] = static_cast<uint64_t>(acc2);
    uint64_t c = static_cast<uint64_t>(acc2 >> 64);
    for (int i = 1; i < 4 && c; ++i) {
      acc2 = static_cast<unsigned __int128>(r.limb[i]) + c;
      r.limb[i] = static_cast<uint64_t>(acc2);
      c = static_cast<uint64_t>(acc2 >> 64);
    }
  }
  return ReduceMod(r, FieldP());
}
}  // namespace

U256 FieldMul(const U256& a, const U256& b) {
  uint64_t w[8];
  Mul512(a, b, w);
  return FieldReduce512(w);
}

U256 FieldSqr(const U256& a) { return FieldMul(a, a); }

U256 FieldExp(const U256& base, const U256& exp) {
  U256 result = U256::One();
  U256 b = ReduceMod(base, FieldP());
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = FieldSqr(result);
    if (exp.Bit(i)) result = FieldMul(result, b);
  }
  return result;
}

U256 FieldInv(const U256& a) {
  // a^(p-2) by Fermat's little theorem.
  U256 p_minus_2;
  SubWithBorrow(FieldP(), U256::FromU64(2), &p_minus_2);
  return FieldExp(a, p_minus_2);
}

U256 FieldSqrt(const U256& a) {
  // p ≡ 3 (mod 4) so sqrt(a) = a^((p+1)/4) when a is a quadratic residue.
  U256 p_plus_1;
  AddWithCarry(FieldP(), U256::One(), &p_plus_1);
  // (p+1)/4: shift right by 2. p+1 does not overflow 2^256 (p < 2^256 - 1).
  U256 e;
  for (int i = 0; i < 4; ++i) {
    uint64_t hi = (i < 3) ? p_plus_1.limb[i + 1] : 0;
    e.limb[i] = (p_plus_1.limb[i] >> 2) | (hi << 62);
  }
  return FieldExp(a, e);
}

}  // namespace crypto
}  // namespace provledger
