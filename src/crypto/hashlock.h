// Hash-lock primitive: commit to a secret by publishing H(secret); anyone
// holding the preimage can later "unlock". This is the cryptographic core of
// the HTLC atomic-swap protocol (crosschain/htlc.h) and of claim-first
// cross-chain transfers surveyed in §2.3 of the paper.
//
// Thread safety: stateless free functions — safe from any thread.

#ifndef PROVLEDGER_CRYPTO_HASHLOCK_H_
#define PROVLEDGER_CRYPTO_HASHLOCK_H_

#include "crypto/sha256.h"

namespace provledger {
namespace crypto {

/// \brief A SHA-256 preimage lock.
struct HashLock {
  Digest lock;

  /// Lock derived from a secret preimage.
  static HashLock FromSecret(const Bytes& secret) {
    return HashLock{Sha256::Hash(secret)};
  }

  /// True iff `secret` is the committed preimage. Constant-time compare.
  bool Matches(const Bytes& secret) const {
    Digest candidate = Sha256::Hash(secret);
    return ConstantTimeEqual(Bytes(candidate.begin(), candidate.end()),
                             Bytes(lock.begin(), lock.end()));
  }

  bool operator==(const HashLock& o) const { return lock == o.lock; }
};

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_HASHLOCK_H_
