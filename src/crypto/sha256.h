// SHA-256 (FIPS 180-4), implemented from scratch. This is the only hash in
// ProvLedger: transaction ids, block ids, Merkle nodes, content addresses,
// hash-locks, and Fiat–Shamir challenges are all SHA-256 digests.
//
// Thread safety: the free functions are stateless and safe from any thread;
// each streaming Sha256 instance is single-owner.

#ifndef PROVLEDGER_CRYPTO_SHA256_H_
#define PROVLEDGER_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace provledger {
namespace crypto {

/// Digest size in bytes.
inline constexpr size_t kSha256DigestSize = 32;

/// Fixed-size SHA-256 digest.
using Digest = std::array<uint8_t, kSha256DigestSize>;

/// \brief Incremental SHA-256 hasher.
///
/// \code
///   Sha256 h;
///   h.Update(part1);
///   h.Update(part2);
///   Digest d = h.Finish();
/// \endcode
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data);
  void Update(std::string_view data);

  /// Finalize and return the digest. The hasher must not be reused after.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(const Bytes& data);
  static Digest Hash(std::string_view data);
  /// Hash of the concatenation a||b (the Merkle interior-node pattern).
  static Digest HashPair(const Digest& a, const Digest& b);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// \brief Digest as an owned Bytes buffer.
Bytes DigestToBytes(const Digest& d);
/// \brief Parse a 32-byte buffer into a Digest; fails on wrong size.
Result<Digest> DigestFromBytes(const Bytes& b);
/// \brief Lowercase hex of a digest.
std::string DigestHex(const Digest& d);
/// \brief All-zero digest (used as "null hash" for genesis prev-links).
Digest ZeroDigest();

/// \brief HMAC-SHA256 (RFC 2104). Used for keyed tokens: searchable-index
/// trapdoors, PUF response simulation, capability MACs.
Digest HmacSha256(const Bytes& key, const Bytes& message);

}  // namespace crypto
}  // namespace provledger

#endif  // PROVLEDGER_CRYPTO_SHA256_H_
