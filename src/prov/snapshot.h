// Snapshot-isolated reads: an epoch-tagged, immutable view of the
// provenance graph that readers query while the writer keeps appending.
//
// The scheme builds on the LazySlice snapshot machinery from the
// durability layer instead of copying the graph: publishing an epoch
// serializes the live graph once into a single immutable buffer
// (ProvenanceGraph::SaveTo), and every reader *thread* opens its own
// cheap ProvenanceGraph over that shared buffer (LoadFrom) — a few bulk
// array reads up front, with adjacency/postings/records hydrating lazily
// into reader-private state only when a query actually touches them. No
// lock is ever taken on the read path: acquiring the current snapshot is
// one atomic shared_ptr load, and everything behind it is immutable.
//
//   writer (committer thread)            readers (any threads)
//   ─────────────────────────            ─────────────────────
//   AnchorPrepared(batch)                auto snap = store.AcquireSnapshot();
//   ...                                  auto reader = snap->OpenReader();
//   store.PublishSnapshot()  ──────────▶ reader->Execute(query);
//   AnchorPrepared(batch)                // still sees the published epoch
//
// Readers therefore observe only fully-committed batches (publication
// happens strictly after a batch commits) and a snapshot acquired once
// stays stable for the whole read transaction, however long the writer
// runs ahead — classic snapshot isolation, at the cost of staleness
// bounded by the publication cadence.

#ifndef PROVLEDGER_PROV_SNAPSHOT_H_
#define PROVLEDGER_PROV_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "prov/graph.h"

namespace provledger {
namespace prov {

class SnapshotReader;

/// \brief One published epoch of the provenance graph: an immutable,
/// self-contained serialization bound to the chain position it was taken
/// at.
///
/// Thread safety: fully immutable after construction — every method is
/// safe from any number of threads concurrently. Holding the shared_ptr
/// keeps the epoch's buffer alive regardless of what the writer publishes
/// next.
class GraphSnapshot {
 public:
  /// Built by ProvenanceStore::PublishSnapshot; `body` is a
  /// ProvenanceGraph::SaveTo serialization.
  GraphSnapshot(uint64_t epoch, uint64_t chain_height, size_t record_count,
                std::shared_ptr<const Bytes> body)
      : epoch_(epoch),
        chain_height_(chain_height),
        record_count_(record_count),
        body_(std::move(body)) {}

  /// Publication sequence number (1 = first publish; strictly increasing).
  uint64_t epoch() const { return epoch_; }
  /// Main-chain height at publication: every block up to and including
  /// this height is reflected in the snapshot, nothing after it.
  uint64_t chain_height() const { return chain_height_; }
  /// Records visible in this epoch.
  size_t record_count() const { return record_count_; }
  /// Size of the serialized graph backing this epoch.
  size_t body_bytes() const { return body_->size(); }

  /// \brief Open a reader over this epoch. Each reader owns a private
  /// lazy graph view into the shared buffer, so a reader is cheap to open
  /// (no record decoding up front) but is NOT itself thread-safe — open
  /// one per reader thread, or call SnapshotReader::Warm() once and share
  /// it read-only.
  Result<SnapshotReader> OpenReader() const;

 private:
  uint64_t epoch_;
  uint64_t chain_height_;
  size_t record_count_;
  std::shared_ptr<const Bytes> body_;
};

/// \brief A queryable view of one snapshot epoch.
///
/// Thread safety: thread-compatible, like any lazily-loaded
/// ProvenanceGraph — one thread per reader. To share a single reader
/// across threads (e.g. for Query::Parallel fan-out), call Warm() first
/// and mutate nothing afterwards; a warmed reader's const methods are
/// pure reads.
class SnapshotReader {
 public:
  /// The epoch this reader sees (never changes, whatever the writer does).
  uint64_t epoch() const { return epoch_; }
  uint64_t chain_height() const { return chain_height_; }

  /// Execute a query against the snapshot (same semantics as
  /// ProvenanceStore::Execute, minus anything newer than the epoch).
  QueryResult Execute(const Query& query) const { return graph_.Run(query); }
  /// Zero-copy streaming overload; the visitor runs on the calling thread.
  size_t Execute(const Query& query,
                 const std::function<bool(const ProvenanceRecord&)>& visit)
      const {
    return graph_.Run(query, visit);
  }

  /// Full graph surface (lineage, cardinality accessors, ...) over the
  /// snapshot.
  const ProvenanceGraph& graph() const { return graph_; }

  /// Materialize everything now (records, postings, intern maps). Trades
  /// the lazy open for concurrent shareability and Query::Parallel
  /// eligibility — see ProvenanceGraph::Warm.
  void Warm() { graph_.Warm(); }

 private:
  friend class GraphSnapshot;
  SnapshotReader(uint64_t epoch, uint64_t chain_height)
      : epoch_(epoch), chain_height_(chain_height) {}

  uint64_t epoch_;
  uint64_t chain_height_;
  ProvenanceGraph graph_;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_SNAPSHOT_H_
