#include "prov/query.h"

#include <algorithm>
#include <cstdio>

namespace provledger {
namespace prov {

const char* QueryIndexName(QueryIndex index) {
  switch (index) {
    case QueryIndex::kSubject:
      return "subject";
    case QueryIndex::kAgent:
      return "agent";
    case QueryIndex::kInput:
      return "input";
    case QueryIndex::kOutput:
      return "output";
    case QueryIndex::kTimeRange:
      return "time_range";
    case QueryIndex::kFullScan:
      return "full_scan";
  }
  return "unknown";
}

std::string QueryExplain::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "index=%s est=%zu scanned=%zu matched=%zu covering=%s "
                "plan_us=%.1f scan_us=%.1f",
                QueryIndexName(index_used), estimated_candidates,
                candidates_scanned, rows_matched,
                covers_filters ? "yes" : "no", plan_seconds * 1e6,
                scan_seconds * 1e6);
  return buf;
}

std::string QueryExplain::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"index\": \"%s\", \"estimated_candidates\": %zu, "
                "\"candidates_scanned\": %zu, \"rows_matched\": %zu, "
                "\"covers_filters\": %s, \"plan_seconds\": %.9g, "
                "\"scan_seconds\": %.9g}",
                QueryIndexName(index_used), estimated_candidates,
                candidates_scanned, rows_matched,
                covers_filters ? "true" : "false", plan_seconds,
                scan_seconds);
  return buf;
}

bool Query::Matches(const ProvenanceRecord& record,
                    bool record_invalidated) const {
  if (subject && record.subject != *subject) return false;
  if (subject_prefix &&
      record.subject.compare(0, subject_prefix->size(), *subject_prefix) !=
          0) {
    return false;
  }
  if (agent && record.agent != *agent) return false;
  if (domain && record.domain != *domain) return false;
  if (!operations.empty() &&
      std::find(operations.begin(), operations.end(), record.operation) ==
          operations.end()) {
    return false;
  }
  if (from && record.timestamp < *from) return false;
  if (to && record.timestamp > *to) return false;
  if (invalidated && record_invalidated != *invalidated) return false;
  if (input && std::find(record.inputs.begin(), record.inputs.end(),
                         *input) == record.inputs.end()) {
    return false;
  }
  if (output) {
    // Output-less records implicitly produce a new subject version
    // (mirrors ProvenanceGraph's effective-outputs rule).
    if (record.outputs.empty()) {
      if (record.subject != *output) return false;
    } else if (std::find(record.outputs.begin(), record.outputs.end(),
                         *output) == record.outputs.end()) {
      return false;
    }
  }
  for (const auto& [key, value] : field_equals) {
    auto it = record.fields.find(key);
    if (it == record.fields.end() || it->second != value) return false;
  }
  return true;
}

}  // namespace prov
}  // namespace provledger
