#include "prov/record.h"

namespace provledger {
namespace prov {

const char* DomainName(Domain domain) {
  switch (domain) {
    case Domain::kGeneric:
      return "generic";
    case Domain::kCloud:
      return "cloud";
    case Domain::kSupplyChain:
      return "supply_chain";
    case Domain::kForensics:
      return "forensics";
    case Domain::kScientific:
      return "scientific";
    case Domain::kHealthcare:
      return "healthcare";
    case Domain::kMachineLearning:
      return "machine_learning";
  }
  return "unknown";
}

const std::vector<std::string>& RequiredFields(Domain domain) {
  static const std::vector<std::string> kSupplyChain = {
      fields::kProductId,    fields::kBatchNumber,    fields::kMfgExpiry,
      fields::kTravelTrace,  fields::kProductType,    fields::kManufacturerId,
      fields::kQuickAccess};
  static const std::vector<std::string> kForensics = {
      fields::kCaseNumber,      fields::kInvestigationStage,
      fields::kCaseStartDate,   fields::kCaseClosureDate,
      fields::kFileTypes,       fields::kAccessPatterns,
      fields::kFilesDependency};
  static const std::vector<std::string> kScientific = {
      fields::kTaskId,    fields::kWorkflowId, fields::kExecutionTime,
      fields::kUserId,    fields::kInputData,  fields::kOutputData,
      fields::kInvalidatedResults};
  static const std::vector<std::string> kNone = {};
  switch (domain) {
    case Domain::kSupplyChain:
      return kSupplyChain;
    case Domain::kForensics:
      return kForensics;
    case Domain::kScientific:
      return kScientific;
    default:
      return kNone;
  }
}

void ProvenanceRecord::EncodeTo(Encoder* enc) const {
  enc->PutString(record_id);
  enc->PutU8(static_cast<uint8_t>(domain));
  enc->PutString(operation);
  enc->PutString(subject);
  enc->PutString(agent);
  enc->PutI64(timestamp);
  enc->PutU32(static_cast<uint32_t>(inputs.size()));
  for (const auto& in : inputs) enc->PutString(in);
  enc->PutU32(static_cast<uint32_t>(outputs.size()));
  for (const auto& out : outputs) enc->PutString(out);
  enc->PutU32(static_cast<uint32_t>(fields.size()));
  for (const auto& [key, value] : fields) {  // std::map: sorted, canonical
    enc->PutString(key);
    enc->PutString(value);
  }
  enc->PutRaw(crypto::DigestToBytes(payload_hash));
}

Bytes ProvenanceRecord::Encode() const {
  Encoder enc;
  EncodeTo(&enc);
  return enc.TakeBuffer();
}

Result<ProvenanceRecord> ProvenanceRecord::DecodeFrom(Decoder* dec) {
  ProvenanceRecord rec;
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&rec.record_id));
  uint8_t domain_byte = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU8(&domain_byte));
  if (domain_byte > static_cast<uint8_t>(Domain::kMachineLearning)) {
    return Status::Corruption("unknown domain byte");
  }
  rec.domain = static_cast<Domain>(domain_byte);
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&rec.operation));
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&rec.subject));
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&rec.agent));
  PROVLEDGER_RETURN_NOT_OK(dec->GetI64(&rec.timestamp));

  // Count prefixes are attacker-controlled: each remaining element costs at
  // least a u32 length prefix (4 bytes), so any count exceeding remaining/4
  // is corrupt — reject before sizing containers off it.
  uint32_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
  if (n > dec->remaining() / 4) {
    return Status::Corruption("record inputs count exceeds payload");
  }
  rec.inputs.resize(n);
  for (auto& in : rec.inputs) PROVLEDGER_RETURN_NOT_OK(dec->GetString(&in));
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
  if (n > dec->remaining() / 4) {
    return Status::Corruption("record outputs count exceeds payload");
  }
  rec.outputs.resize(n);
  for (auto& out : rec.outputs) PROVLEDGER_RETURN_NOT_OK(dec->GetString(&out));
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
  if (n > dec->remaining() / 8) {  // a field is two length-prefixed strings
    return Status::Corruption("record fields count exceeds payload");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string key, value;
    PROVLEDGER_RETURN_NOT_OK(dec->GetString(&key));
    PROVLEDGER_RETURN_NOT_OK(dec->GetString(&value));
    // The encoding is canonical (EncodeTo walks the map in key order), so a
    // decoder seeing out-of-order or duplicate keys is looking at bytes no
    // encoder produced. Accepting them would let two distinct byte strings
    // decode to records with the same Hash().
    if (!rec.fields.empty() && key <= rec.fields.rbegin()->first) {
      return Status::Corruption("record field keys not strictly increasing");
    }
    rec.fields.emplace(std::move(key), std::move(value));
  }
  Bytes raw;
  PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(crypto::kSha256DigestSize, &raw));
  PROVLEDGER_ASSIGN_OR_RETURN(rec.payload_hash, crypto::DigestFromBytes(raw));
  return rec;
}

Result<ProvenanceRecord> ProvenanceRecord::Decode(const Bytes& data) {
  Decoder dec(data);
  PROVLEDGER_ASSIGN_OR_RETURN(ProvenanceRecord rec, DecodeFrom(&dec));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after provenance record");
  }
  return rec;
}

crypto::Digest ProvenanceRecord::Hash() const {
  return crypto::Sha256::Hash(Encode());
}

Status ProvenanceRecord::Validate() const {
  if (record_id.empty()) {
    return Status::InvalidArgument("record_id must not be empty");
  }
  if (operation.empty()) {
    return Status::InvalidArgument("operation must not be empty");
  }
  if (subject.empty()) {
    return Status::InvalidArgument("subject must not be empty");
  }
  if (agent.empty()) {
    return Status::InvalidArgument("agent must not be empty");
  }
  for (const auto& key : RequiredFields(domain)) {
    if (!fields.count(key)) {
      return Status::InvalidArgument(
          std::string("missing required field for domain ") +
          DomainName(domain) + ": " + key);
    }
  }
  return Status::OK();
}

ProvenanceRecord MakeSupplyChainRecord(
    const std::string& record_id, const std::string& operation,
    const std::string& product_id, const std::string& agent,
    Timestamp timestamp, const std::string& batch, const std::string& expiry,
    const std::string& trace, const std::string& type,
    const std::string& manufacturer, const std::string& qr) {
  ProvenanceRecord rec;
  rec.record_id = record_id;
  rec.domain = Domain::kSupplyChain;
  rec.operation = operation;
  rec.subject = product_id;
  rec.agent = agent;
  rec.timestamp = timestamp;
  rec.fields[fields::kProductId] = product_id;
  rec.fields[fields::kBatchNumber] = batch;
  rec.fields[fields::kMfgExpiry] = expiry;
  rec.fields[fields::kTravelTrace] = trace;
  rec.fields[fields::kProductType] = type;
  rec.fields[fields::kManufacturerId] = manufacturer;
  rec.fields[fields::kQuickAccess] = qr;
  return rec;
}

ProvenanceRecord MakeForensicsRecord(
    const std::string& record_id, const std::string& operation,
    const std::string& evidence_id, const std::string& agent,
    Timestamp timestamp, const std::string& case_number,
    const std::string& stage, const std::string& start_date,
    const std::string& closure_date, const std::string& file_types,
    const std::string& access_patterns, const std::string& dependency) {
  ProvenanceRecord rec;
  rec.record_id = record_id;
  rec.domain = Domain::kForensics;
  rec.operation = operation;
  rec.subject = evidence_id;
  rec.agent = agent;
  rec.timestamp = timestamp;
  rec.fields[fields::kCaseNumber] = case_number;
  rec.fields[fields::kInvestigationStage] = stage;
  rec.fields[fields::kCaseStartDate] = start_date;
  rec.fields[fields::kCaseClosureDate] = closure_date;
  rec.fields[fields::kFileTypes] = file_types;
  rec.fields[fields::kAccessPatterns] = access_patterns;
  rec.fields[fields::kFilesDependency] = dependency;
  return rec;
}

ProvenanceRecord MakeScientificRecord(
    const std::string& record_id, const std::string& operation,
    const std::string& task_id, const std::string& agent, Timestamp timestamp,
    const std::string& workflow_id, const std::string& execution_time,
    const std::string& user_id, const std::string& input_data,
    const std::string& output_data, const std::string& invalidated) {
  ProvenanceRecord rec;
  rec.record_id = record_id;
  rec.domain = Domain::kScientific;
  rec.operation = operation;
  rec.subject = task_id;
  rec.agent = agent;
  rec.timestamp = timestamp;
  rec.fields[fields::kTaskId] = task_id;
  rec.fields[fields::kWorkflowId] = workflow_id;
  rec.fields[fields::kExecutionTime] = execution_time;
  rec.fields[fields::kUserId] = user_id;
  rec.fields[fields::kInputData] = input_data;
  rec.fields[fields::kOutputData] = output_data;
  rec.fields[fields::kInvalidatedResults] = invalidated;
  return rec;
}

}  // namespace prov
}  // namespace provledger
