// Columnar batch codec for provenance records — the compact form of the
// record hot path. Records in a batch are extremely self-similar (shared
// agents/operations/field schemas, near-monotonic timestamps, record ids
// differing only in a numeric suffix): laying fields out column-major and
// encoding each column with a dictionary, prefix+delta ids, and
// zigzag-varint deltas shrinks the tiny high-frequency sensor records of
// IoT-scale ingest by roughly an order of magnitude versus the canonical
// per-record form.
//
// The strict invariant: decoding reproduces records **bit-identical** to
// their canonical ProvenanceRecord::Encode() form — same Hash(), so Merkle
// roots, dedup, and follower re-validation are untouched. The block codec
// enforces this at encode time: a transaction whose payload is not the
// canonical encoding of a decodable record (foreign tx types, non-canonical
// payloads) falls back to its raw bytes inside the same frame.
//
// Frame versioning: a columnar block body starts with the 8-byte magic
// "PLCOLB01"; DecodeBlock sniffs it and falls back to the legacy
// Block::Decode() wire form otherwise, so old ChainLog files replay and
// mixed-version peers interoperate. (A legacy body cannot collide with the
// magic: its first 8 bytes are the little-endian block height, and the
// magic read as a height is ~3.5e18.)
//
// Column layout inside a batch (after the shared string dictionary):
//   record ids   — trailing-digit split: dict(head) + digit width +
//                  zigzag-varint delta of the numeric suffix
//   domains      — one byte each
//   operations   — dict references
//   subjects     — id-encoded (same split as record ids; own delta chain)
//   agents       — id-encoded
//   timestamps   — zigzag-varint deltas
//   inputs/outputs — count + id-encoded entries
//   fields       — field-key *schemas* interned on first sight (a schema is
//                  the ordered key-id list); per record one schema ref plus
//                  dict refs for the values
//   payload hash — 1 flag byte (zero digest) or flag + 32 raw bytes
//
// Thread safety: free encode/decode functions over caller-owned buffers —
// safe concurrently on distinct data.

#ifndef PROVLEDGER_PROV_COLUMNAR_H_
#define PROVLEDGER_PROV_COLUMNAR_H_

#include <vector>

#include "ledger/block.h"
#include "prov/record.h"

namespace provledger {
namespace prov {
namespace columnar {

/// Magic prefix of a columnar block body ("PLCOLB01").
extern const uint8_t kBlockMagic[8];

/// \brief Encode a record batch column-major (self-contained: dictionary +
/// columns). Round trip is exact: decoding yields records whose Encode()
/// bytes — and therefore Hash() — equal the originals'.
void EncodeRecordBatch(const std::vector<ProvenanceRecord>& records,
                       Encoder* enc);
Bytes EncodeRecordBatch(const std::vector<ProvenanceRecord>& records);

/// \brief Decode a batch produced by EncodeRecordBatch. Truncated or
/// corrupt frames (bad dict/schema references, overlong varints, unknown
/// domain bytes, trailing garbage in the Bytes overload) fail loudly with
/// Corruption — never a partial batch.
Status DecodeRecordBatch(Decoder* dec, std::vector<ProvenanceRecord>* out);
Result<std::vector<ProvenanceRecord>> DecodeRecordBatch(const Bytes& data);

/// \brief Encode a block with a columnar body: header as today, then the
/// transaction columns, with prov/record payloads stored once through the
/// record columns. Safe for arbitrary blocks — transactions that do not
/// carry a canonical record payload ride along as raw bytes.
Bytes EncodeBlock(const ledger::Block& block);

/// \brief Decode a block body of either form: columnar (magic-prefixed) or
/// legacy Block::Encode() bytes. This is the one entry point the byte-bound
/// layers (ChainLog replay, replication ingest) use, so a reader never
/// needs to know which format a peer or an old log wrote.
Result<ledger::Block> DecodeBlock(const Bytes& payload);

/// True when `payload` carries the columnar magic.
bool IsColumnarBlock(const Bytes& payload);

}  // namespace columnar
}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_COLUMNAR_H_
