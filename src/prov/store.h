// ProvenanceStore: binds provenance records to the blockchain and maintains
// the query indexes + in-memory PROV graph. This is the "unified solution
// that can thoroughly capture, extract, and query provenance" whose absence
// §3.1 of the paper identifies.
//
//   * Anchor()        — serialize a record into a ledger transaction
//   * GetRecord()     — point lookup via the record index
//   * Execute()       — composable index-planned queries (prov/query.h)
//   * SubjectHistory()/ByAgent()/Lineage() — fixed-shape wrappers
//   * ProveRecord()   — Merkle inclusion proof (auditor / light client)
//   * RebuildFromChain() — recover all state purely from the ledger
//   * hash_agent_ids  — ProvChain's privacy mode: agents appear on-chain
//                       only as keyed hashes, preventing user correlation

#ifndef PROVLEDGER_PROV_STORE_H_
#define PROVLEDGER_PROV_STORE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_set>

#include "ledger/chain.h"
#include "obs/metrics.h"
#include "prov/graph.h"
#include "prov/snapshot.h"
#include "storage/kv_store.h"

namespace provledger {
namespace prov {

/// \brief Store configuration.
struct ProvenanceStoreOptions {
  /// Ledger channel records are anchored on.
  std::string channel = "prov";
  /// Anchor after this many buffered records (1 = every record its own
  /// block; larger values trade latency for block-formation overhead).
  size_t batch_size = 1;
  /// ProvChain privacy mode: replace `agent` with HMAC(anon_key, agent) at
  /// anchor time so on-chain entries cannot be correlated to users.
  bool hash_agent_ids = false;
  /// Key for agent-id hashing (only used when hash_agent_ids).
  Bytes anonymization_key = {0x42};
  /// Block proposer identity used for anchored blocks.
  std::string proposer = "prov-store";
  /// Metric registry for query/anchor instrumentation (nullptr = the
  /// process-wide obs::Registry::Default()). Inject a private instance to
  /// scrape one store in isolation (per-node registries in replication
  /// tests do exactly this).
  obs::Registry* registry = nullptr;
};

/// \brief A record whose expensive anchoring work — validation,
/// anonymization, serialization, transaction digests — already happened,
/// off the commit path. PrepareRecord builds these on ingest-pipeline
/// shard threads; AnchorPrepared commits them without re-hashing a byte.
struct PreparedRecord {
  /// Validated record, agent already rewritten to its on-chain id.
  ProvenanceRecord record;
  /// The anchoring transaction (payload = encoded record, nonce assigned).
  ledger::Transaction tx;
  /// Cached Transaction::Id() of `tx`.
  crypto::Digest txid;
  /// Cached Merkle leaf digest of `tx`'s canonical encoding.
  crypto::Digest leaf;
};

/// \brief A commit-ready group of prepared records, optionally carrying
/// the Merkle root over their leaf digests (in order) so even the
/// digest-level tree build happens off the committer thread. The root is
/// only usable when the batch commits exactly as prepared — dropping a
/// duplicate falls back to rebuilding from the surviving leaves.
/// AnchorPrepared consumes both fields: after it returns, the root is
/// present only on a chain-refusal hand-back where the handed-back
/// records still match it exactly, so a PreparedBatch can be reused
/// (refilled) without a stale root leaking into a later block.
struct PreparedBatch {
  std::vector<PreparedRecord> records;
  std::optional<crypto::Digest> merkle_root;
};

/// \brief Ledger-backed provenance store.
///
/// Thread safety: NOT internally synchronized — one thread (or external
/// locking) must own every mutating and live-querying call; the ingest
/// pipeline satisfies this by funnelling all of them through its single
/// committer thread. Three members are the deliberate exceptions, safe
/// from any thread with no lock:
///   * PrepareRecord()    — pure function of its inputs + immutable options
///   * AcquireSnapshot()  — one atomic shared_ptr load
///   * snapshot_epoch()   — one atomic read
class ProvenanceStore {
 public:
  ProvenanceStore(ledger::Blockchain* chain, Clock* clock,
                  ProvenanceStoreOptions options = ProvenanceStoreOptions());

  /// Validate, (optionally) anonymize, buffer, and anchor a record. With
  /// batch_size == 1 this immediately appends a block. Pass a signer to
  /// produce a signed transaction (user-direct capture path).
  Status Anchor(const ProvenanceRecord& record,
                const crypto::PrivateKey* signer = nullptr);
  /// Anchor a batch in one block regardless of batch_size.
  Status AnchorBatch(const std::vector<ProvenanceRecord>& records,
                     const crypto::PrivateKey* signer = nullptr);
  /// Flush any buffered records into a block. If the chain rejects the
  /// block, everything stays buffered for retry. Once the block is
  /// appended, *every* record of the batch is indexed even if some fail —
  /// an on-chain record must never be invisible to queries — and the
  /// per-record failures come back aggregated as one Internal status.
  Status Flush();

  /// \name Prepared (pipelined) ingest.
  /// The two-phase write path behind prov::IngestPipeline: preparation is
  /// the per-record heavy lifting and runs concurrently on shard threads;
  /// committing is cheap sequencing and runs on one committer thread.
  /// @{
  /// Validate, (optionally) anonymize, serialize, and hash `record` into
  /// a PreparedRecord carrying its anchoring transaction. Thread-safe
  /// const: touches only immutable options and the clock — never graph or
  /// index state, so duplicate detection waits until AnchorPrepared.
  /// `nonce` must be unique per transaction (the pipeline issues them
  /// from one atomic counter seeded past the store's own).
  /// `scratch` (optional) is a caller-owned reusable encoder the
  /// transaction encoding is built in — on the IoT hot path of tiny
  /// records, a worker-thread-local scratch kills the per-record heap
  /// allocation of that temporary (its capacity stabilizes after a few
  /// records). Contents are clobbered; the caller must not read them.
  Result<PreparedRecord> PrepareRecord(ProvenanceRecord&& record,
                                       uint64_t nonce,
                                       const crypto::PrivateKey* signer =
                                           nullptr,
                                       Encoder* scratch = nullptr) const;
  /// Anchor a prepared batch as one block, reusing every cached digest
  /// (no re-encode, no re-hash; see Blockchain::AppendPrepared) and the
  /// batch's precomputed Merkle root when it is intact.
  /// Committer/writer thread only. Records already anchored or duplicated
  /// within the batch are dropped *before* the block forms and reported
  /// via the returned status; the rest commit. Like Flush, once the block
  /// is on the chain every surviving record is indexed even past
  /// per-record indexing failures (aggregated Internal). `committed`
  /// (optional) receives the number of records that fully landed —
  /// on-chain AND indexed.
  /// `*batch` is consumed on commit; if the *chain refuses the block*
  /// (validation, durability-sink error) it is handed back intact (minus
  /// dropped duplicates) so the caller can retry — the same
  /// no-record-loss contract as AnchorBatch's un-buffering.
  /// Does not touch the Anchor()/Flush() pending buffer — don't interleave
  /// unflushed buffered records with prepared commits.
  Status AnchorPrepared(PreparedBatch* batch, size_t* committed = nullptr);
  /// Convenience overload without a precomputed root; the batch is
  /// consumed even on chain refusal (no retry hand-back).
  Status AnchorPrepared(std::vector<PreparedRecord> records,
                        size_t* committed = nullptr) {
    PreparedBatch batch;
    batch.records = std::move(records);
    return AnchorPrepared(&batch, committed);
  }
  /// @}

  /// \name Snapshot-isolated reads (epoch publication).
  /// The writer publishes immutable epochs; readers acquire them lock-free
  /// and query away while writes continue. See prov/snapshot.h for the
  /// full model.
  /// @{
  /// Serialize the current graph into a new immutable epoch and publish
  /// it. Writer/committer thread only (it reads live graph state); the
  /// publication itself is an atomic pointer swap, so readers never see a
  /// half-built snapshot. Cost is O(graph) — amortize by publishing per
  /// batch group, not per record (IngestPipelineOptions::
  /// snapshot_every_batches).
  Status PublishSnapshot();
  /// Latest published epoch, or nullptr before the first publication.
  /// Wait-free; safe from any thread. The returned snapshot stays valid
  /// (and unchanged) for as long as the pointer is held.
  std::shared_ptr<const GraphSnapshot> AcquireSnapshot() const;
  /// Epoch number of the latest publication (0 = none yet). Safe from any
  /// thread; readers use it to decide whether to re-acquire.
  uint64_t snapshot_epoch() const {
    return snapshot_epoch_.load(std::memory_order_acquire);
  }
  /// @}

  /// Point lookup by record id.
  Result<ProvenanceRecord> GetRecord(const std::string& record_id) const;
  /// True if the record id is anchored.
  bool HasRecord(const std::string& record_id) const;

  /// Execute a composable query over anchored records (planner-backed; see
  /// prov/query.h). In privacy mode, agent filters match on-chain ids —
  /// pass OnChainAgentId(agent).
  QueryResult Execute(const Query& query) const;
  /// Streaming overload: zero-copy visit of each match in order; the
  /// visitor returns false to stop early. Returns records visited. The
  /// visitor must not anchor/flush/invalidate through this store — the
  /// scan holds pointers into the graph's index vectors.
  size_t Execute(const Query& query,
                 const std::function<bool(const ProvenanceRecord&)>& visit)
      const;
  /// EXPLAIN: plan `query` against the live graph and report the planner's
  /// index choice, candidate estimate vs actual rows scanned/matched, and
  /// per-phase timing — without materializing any record (see
  /// QueryExplain). Same threading contract as Execute().
  QueryExplain Explain(const Query& query) const;

  /// Exposition of this store's metric registry (the process-wide default
  /// unless one was injected): every metric every instrumented layer
  /// registered there, in Prometheus text or JSON form. Safe from any
  /// thread.
  std::string MetricsSnapshot(
      obs::ExpositionFormat format =
          obs::ExpositionFormat::kPrometheusText) const;
  /// The registry this store records into.
  obs::Registry* registry() const { return registry_; }

  /// \name Fixed-shape queries (thin wrappers over Execute()).
  /// @{
  /// All records for a subject, in time order.
  std::vector<ProvenanceRecord> SubjectHistory(
      const std::string& subject) const;
  /// All records by an agent (pass the anonymized id in privacy mode).
  std::vector<ProvenanceRecord> ByAgent(const std::string& agent) const;
  /// Records with timestamp in the inclusive [from, to] window.
  std::vector<ProvenanceRecord> InRange(Timestamp from, Timestamp to) const;
  /// Ancestor entities of `entity` (delegates to the PROV graph).
  std::vector<std::string> Lineage(const std::string& entity) const;
  /// @}

  /// The agent id as it appears on-chain (identity unless privacy mode).
  std::string OnChainAgentId(const std::string& agent) const;

  /// Id of the transaction that anchored `record_id` (NotFound when the
  /// record is not anchored). The audit layer's lineage-proof builder uses
  /// this to walk from records back to their on-chain transactions.
  Result<crypto::Digest> RecordTxId(const std::string& record_id) const;

  /// Merkle inclusion proof of the record's anchoring transaction.
  Result<ledger::TxProof> ProveRecord(const std::string& record_id) const;
  /// Verify a record + proof against the chain (auditor path).
  bool VerifyRecordProof(const ProvenanceRecord& record,
                         const ledger::TxProof& proof) const;

  /// Index the prov/record transactions of the main-chain block at
  /// `height` — the follower apply path of the replication layer, where a
  /// block enters via Blockchain::SubmitBlock (full re-validation) rather
  /// than Anchor()/Flush(), so the store has not yet seen its records.
  /// Call once per height, in order, for blocks the store has not indexed;
  /// a block whose records are already indexed fails as duplicates.
  Status ApplyChainBlock(uint64_t height);

  /// Drop all local state and rebuild indexes + graph from the chain.
  /// A replay failure resets the store again (a partially rebuilt state
  /// is not kept). If an epoch was ever published, a fresh one is
  /// published from the resulting state — rebuilt on success, empty on
  /// failure — so readers cannot keep acquiring pre-rebuild state.
  Status RebuildFromChain();

  /// \name Snapshot persistence (durable restart path).
  /// A snapshot serializes the store's derived state — the dense-id graph,
  /// the rec/ index, anchored count and nonce — bound to the chain position
  /// it was taken at (height + block hash). Restart = LoadSnapshot + replay
  /// of the short chain tail past the snapshot height, instead of a full
  /// O(chain) RebuildFromChain. Only anchored state is covered: pending
  /// (unflushed) records are not on the chain and not in the snapshot, so
  /// flush before snapshotting.
  /// @{
  /// Atomically (temp file + rename) write a snapshot of the current
  /// anchored state.
  Status SaveSnapshot(const std::string& path) const;
  /// Restore from a snapshot, then replay chain blocks past the snapshot
  /// height. FailedPrecondition when the snapshot was taken on a different
  /// chain (block hash mismatch) or past this chain's height — callers
  /// should fall back to RebuildFromChain (see Recover). If an epoch was
  /// ever published, a fresh one is published afterwards — from the
  /// restored state on success, or from the reset (empty) state when a
  /// failure struck after the restore began mutating state — so readers
  /// never keep acquiring pre-restore state. Failures detected before any
  /// mutation (bad magic/checksum, wrong chain, bad height) leave both
  /// the store and the published epoch untouched.
  Status LoadSnapshot(const std::string& path);
  /// Restart entry point: LoadSnapshot if `snapshot_path` holds a usable
  /// snapshot for this chain, otherwise a full RebuildFromChain. Corrupt
  /// snapshot *contents* still fail loudly rather than falling back.
  Status Recover(const std::string& snapshot_path);
  /// @}

  /// Auditor sweep: re-fetch and Merkle-verify every indexed record.
  /// Returns the number verified, or Corruption on the first mismatch.
  Result<size_t> AuditAll() const;

  const ProvenanceGraph& graph() const { return graph_; }
  /// Mutable graph access for invalidation workflows (SciBlock semantics
  /// operate on the store's shared graph so cross-workflow cascades work).
  ProvenanceGraph* mutable_graph() { return &graph_; }
  ledger::Blockchain* chain() { return chain_; }
  const ledger::Blockchain* chain() const { return chain_; }
  size_t anchored_count() const { return anchored_count_; }
  size_t pending_count() const { return pending_.size(); }
  /// Highest transaction nonce issued or observed so far. The pipeline
  /// seeds its own atomic nonce counter from this at construction.
  uint64_t nonce() const { return nonce_; }

  const ProvenanceStoreOptions& options() const { return options_; }

 private:
  Status IndexRecord(ProvenanceRecord&& record, const crypto::Digest& txid);
  /// Drop graph, index, counters, and pending buffers.
  void ResetState();
  /// Index every prov/record transaction of the main-chain block at `h`
  /// (the shared per-block step of RebuildFromChain and tail replay).
  Status ReplayBlock(uint64_t h);
  /// Hydrate the rec/ index from a snapshot's deferred section. Queries
  /// never touch the index; only the proof/audit paths (and new anchors)
  /// pay this, once.
  Status EnsureIndexLoaded() const;
  /// AlreadyExists if `record_id` is anchored or buffered for anchoring.
  Status CheckNotAnchored(const std::string& record_id) const;
  /// Serialize the current graph into a new epoch stamped as reflecting
  /// the chain up to `reflected_height` (PublishSnapshot passes the chain
  /// head; restore paths pass the height actually replayed).
  Status PublishSnapshotAt(uint64_t reflected_height);
  /// If an epoch was ever published, publish a fresh one from current
  /// state — restore paths call this so readers never keep acquiring a
  /// snapshot of pre-restore state.
  Status RepublishIfPublished(uint64_t reflected_height);
  /// Validate, dedup, encode once, and buffer `record` (already carrying
  /// its on-chain agent id) plus its transaction.
  Status Buffer(ProvenanceRecord&& record, const crypto::PrivateKey* signer);
  /// Build the anchoring transaction for `payload` with an explicit nonce
  /// (thread-safe const — reads only options and the clock).
  ledger::Transaction MakeTx(Bytes payload, const crypto::PrivateKey* signer,
                             uint64_t nonce) const;

  ledger::Blockchain* chain_;
  Clock* clock_;
  ProvenanceStoreOptions options_;
  // Resolved registry + cells cached at construction; increments on the
  // query path are single relaxed adds on these.
  obs::Registry* registry_;
  obs::Counter* query_plans_[6] = {};  // indexed by QueryIndex
  obs::Histogram* query_seconds_;
  ProvenanceGraph graph_;
  // "rec/<id>" -> txid bytes. After LoadSnapshot the entries wait as a
  // zero-copy snapshot slice until the first proof/audit/anchor needs them.
  mutable storage::MemKvStore index_;
  mutable LazySlice lazy_index_;
  std::vector<ledger::Transaction> pending_;
  std::vector<ProvenanceRecord> pending_records_;
  // Record ids in pending_records_, so a duplicate cannot buffer twice and
  // then corrupt graph/index state when Flush() replays the batch.
  std::unordered_set<std::string> pending_ids_;
  size_t anchored_count_ = 0;
  uint64_t nonce_ = 0;
  // Latest published epoch; accessed with std::atomic_load/atomic_store so
  // AcquireSnapshot never locks. snapshot_epoch_ trails the pointer (it is
  // published second), so epoch N observed implies snapshot epoch >= N is
  // acquirable. Deliberately NOT PROV_GUARDED_BY anything (annotations.h):
  // there is no lock — publication IS the atomic_store, acquisition the
  // atomic_load; everything behind the pointer is immutable.
  std::shared_ptr<const GraphSnapshot> snapshot_;
  std::atomic<uint64_t> snapshot_epoch_{0};
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_STORE_H_
