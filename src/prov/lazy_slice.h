// LazySlice: a zero-copy view into a shared snapshot buffer whose decoding
// is deferred until first use. The whole snapshot body is checksummed at
// load time (common/hash64.h), so slices can be handed out without
// re-verification; holding a slice pins the backing buffer alive.
//
// Thread safety: thread-compatible value type over an immutable shared
// buffer — concurrent const reads of one slice are safe; mutation
// (clear/assign) needs a single owner.

#ifndef PROVLEDGER_PROV_LAZY_SLICE_H_
#define PROVLEDGER_PROV_LAZY_SLICE_H_

#include <memory>

#include "common/codec.h"

namespace provledger {
namespace prov {

/// \brief [offset, offset + length) of a shared, immutable byte buffer.
struct LazySlice {
  std::shared_ptr<const Bytes> backing;
  size_t offset = 0;
  size_t length = 0;

  bool empty() const { return backing == nullptr; }
  const uint8_t* data() const { return backing->data() + offset; }
  void clear() {
    backing.reset();
    offset = 0;
    length = 0;
  }
};

/// \brief Read a `[u32 length][bytes]`-framed section from `dec` as a
/// zero-copy slice of `backing`. `dec` must be decoding `*backing` itself
/// (from offset 0), so dec->position() is an absolute offset into it.
inline Status GetSlice(Decoder* dec,
                       const std::shared_ptr<const Bytes>& backing,
                       LazySlice* out) {
  uint32_t len = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&len));
  out->backing = backing;
  out->offset = dec->position();
  out->length = len;
  return dec->Skip(len);
}

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_LAZY_SLICE_H_
