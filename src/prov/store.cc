#include "prov/store.h"

namespace provledger {
namespace prov {

ProvenanceStore::ProvenanceStore(ledger::Blockchain* chain, Clock* clock,
                                 ProvenanceStoreOptions options)
    : chain_(chain), clock_(clock), options_(std::move(options)) {}

std::string ProvenanceStore::OnChainAgentId(const std::string& agent) const {
  if (!options_.hash_agent_ids) return agent;
  crypto::Digest mac =
      crypto::HmacSha256(options_.anonymization_key, ToBytes(agent));
  return "anon-" + HexEncode(mac.data(), 8);
}

ledger::Transaction ProvenanceStore::MakeTx(
    Bytes payload, const crypto::PrivateKey* signer) const {
  if (signer != nullptr) {
    return ledger::Transaction::MakeSigned("prov/record", options_.channel,
                                           std::move(payload), *signer,
                                           clock_->NowMicros(), nonce_);
  }
  return ledger::Transaction::MakeSystem("prov/record", options_.channel,
                                         std::move(payload),
                                         clock_->NowMicros(), nonce_);
}

Status ProvenanceStore::CheckNotAnchored(const std::string& record_id) const {
  if (graph_.HasRecord(record_id) || pending_ids_.count(record_id)) {
    return Status::AlreadyExists("record already anchored: " + record_id);
  }
  return Status::OK();
}

Status ProvenanceStore::Buffer(ProvenanceRecord&& record,
                               const crypto::PrivateKey* signer) {
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  PROVLEDGER_RETURN_NOT_OK(CheckNotAnchored(record.record_id));
  ++nonce_;
  // Encode once; the encoding travels into the transaction payload and the
  // record itself moves into the pending buffer — no further full copies.
  pending_.push_back(MakeTx(record.Encode(), signer));
  pending_ids_.insert(record.record_id);
  pending_records_.push_back(std::move(record));
  return Status::OK();
}

Status ProvenanceStore::Anchor(const ProvenanceRecord& record,
                               const crypto::PrivateKey* signer) {
  ProvenanceRecord anchored = record;
  anchored.agent = OnChainAgentId(record.agent);
  PROVLEDGER_RETURN_NOT_OK(Buffer(std::move(anchored), signer));
  if (pending_.size() >= options_.batch_size) {
    return Flush();
  }
  return Status::OK();
}

Status ProvenanceStore::AnchorBatch(
    const std::vector<ProvenanceRecord>& records,
    const crypto::PrivateKey* signer) {
  // All-or-nothing: a mid-batch failure must not leave this batch's
  // records buffered, or they would block retries and then ride along on
  // an unrelated later Flush despite the reported error.
  const size_t mark = pending_.size();
  const uint64_t nonce_mark = nonce_;
  for (const auto& record : records) {
    ProvenanceRecord anchored = record;
    anchored.agent = OnChainAgentId(record.agent);
    Status s = Buffer(std::move(anchored), signer);
    if (!s.ok()) {
      for (size_t i = mark; i < pending_records_.size(); ++i) {
        pending_ids_.erase(pending_records_[i].record_id);
      }
      pending_.resize(mark);
      pending_records_.resize(mark);
      nonce_ = nonce_mark;
      return s;
    }
  }
  return Flush();
}

Status ProvenanceStore::Flush() {
  if (pending_.empty()) return Status::OK();
  // Append before touching the buffers: on failure (block too large,
  // signature policy, ...) everything stays pending so the caller can fix
  // the chain options and retry without losing records.
  auto block_hash =
      chain_->Append(pending_, clock_->NowMicros(), options_.proposer);
  if (!block_hash.ok()) return block_hash.status();

  std::vector<ledger::Transaction> txs = std::move(pending_);
  std::vector<ProvenanceRecord> records = std::move(pending_records_);
  pending_.clear();
  pending_records_.clear();
  pending_ids_.clear();
  for (size_t i = 0; i < records.size(); ++i) {
    PROVLEDGER_RETURN_NOT_OK(IndexRecord(records[i], txs[i].Id()));
  }
  return Status::OK();
}

Status ProvenanceStore::IndexRecord(const ProvenanceRecord& record,
                                    const crypto::Digest& txid) {
  PROVLEDGER_RETURN_NOT_OK(graph_.AddRecord(record));
  PROVLEDGER_RETURN_NOT_OK(index_.Put("rec/" + record.record_id,
                                      crypto::DigestToBytes(txid)));
  ++anchored_count_;
  return Status::OK();
}

Result<ProvenanceRecord> ProvenanceStore::GetRecord(
    const std::string& record_id) const {
  return graph_.GetRecord(record_id);
}

bool ProvenanceStore::HasRecord(const std::string& record_id) const {
  return graph_.HasRecord(record_id);
}

QueryResult ProvenanceStore::Execute(const Query& query) const {
  return graph_.Run(query);
}

size_t ProvenanceStore::Execute(
    const Query& query,
    const std::function<bool(const ProvenanceRecord&)>& visit) const {
  return graph_.Run(query, visit);
}

std::vector<ProvenanceRecord> ProvenanceStore::SubjectHistory(
    const std::string& subject) const {
  return Execute(Query().WithSubject(subject)).records;
}

std::vector<ProvenanceRecord> ProvenanceStore::ByAgent(
    const std::string& agent) const {
  return Execute(Query().WithAgent(agent)).records;
}

std::vector<ProvenanceRecord> ProvenanceStore::InRange(Timestamp from,
                                                       Timestamp to) const {
  return Execute(Query().Between(from, to)).records;
}

std::vector<std::string> ProvenanceStore::Lineage(
    const std::string& entity) const {
  return graph_.Lineage(entity);
}

Result<ledger::TxProof> ProvenanceStore::ProveRecord(
    const std::string& record_id) const {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes txid_bytes,
                              index_.Get("rec/" + record_id));
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::Digest txid,
                              crypto::DigestFromBytes(txid_bytes));
  return chain_->ProveTransaction(txid);
}

bool ProvenanceStore::VerifyRecordProof(const ProvenanceRecord& record,
                                        const ledger::TxProof& proof) const {
  auto txid_bytes = index_.Get("rec/" + record.record_id);
  if (!txid_bytes.ok()) return false;
  auto txid = crypto::DigestFromBytes(txid_bytes.value());
  if (!txid.ok()) return false;
  auto tx = chain_->GetTransaction(txid.value());
  if (!tx.ok()) return false;
  // The anchored transaction must carry exactly this record's encoding.
  if (tx->payload != record.Encode()) return false;
  return chain_->VerifyTxProof(tx->Encode(), proof);
}

Status ProvenanceStore::RebuildFromChain() {
  graph_ = ProvenanceGraph();
  index_ = storage::MemKvStore();
  anchored_count_ = 0;
  pending_.clear();
  pending_records_.clear();
  pending_ids_.clear();
  nonce_ = 0;

  for (uint64_t h = 0; h <= chain_->height(); ++h) {
    const ledger::Block* block = chain_->PeekBlock(h);
    if (block == nullptr) {
      return Status::NotFound("no block at height " + std::to_string(h));
    }
    for (const auto& tx : block->transactions) {
      if (tx.type != "prov/record" || tx.channel != options_.channel) {
        continue;
      }
      PROVLEDGER_ASSIGN_OR_RETURN(ProvenanceRecord record,
                                  ProvenanceRecord::Decode(tx.payload));
      PROVLEDGER_RETURN_NOT_OK(IndexRecord(record, tx.Id()));
      // Resume nonce issuance past everything already on the chain, so
      // post-rebuild transactions never reuse an anchored nonce.
      if (tx.nonce > nonce_) nonce_ = tx.nonce;
    }
  }
  return Status::OK();
}

Result<size_t> ProvenanceStore::AuditAll() const {
  size_t verified = 0;
  auto it = index_.NewIterator();
  for (it->Seek("rec/"); it->Valid(); it->Next()) {
    if (it->key().compare(0, 4, "rec/") != 0) break;
    auto txid = crypto::DigestFromBytes(it->value());
    if (!txid.ok()) return txid.status();
    auto tx = chain_->GetTransaction(txid.value());
    if (!tx.ok()) {
      return Status::Corruption("anchored record missing from chain: " +
                                it->key());
    }
    auto proof = chain_->ProveTransaction(txid.value());
    if (!proof.ok()) return proof.status();
    if (!chain_->VerifyTxProof(tx->Encode(), proof.value())) {
      return Status::Corruption("merkle verification failed for " +
                                it->key());
    }
    ++verified;
  }
  return verified;
}

}  // namespace prov
}  // namespace provledger
