#include "prov/store.h"

#include <algorithm>

#include "common/fileio.h"
#include "common/hash64.h"

namespace provledger {
namespace prov {

namespace {
// Snapshot file: magic, then a checksum-framed body (torn or bit-rotted
// snapshots are detected before any state is replaced; Hash64 keeps the
// verification cheap on multi-megabyte bodies).
constexpr char kSnapshotMagic[8] = {'P', 'L', 'S', 'N', 'A', 'P', '0', '2'};
}  // namespace

ProvenanceStore::ProvenanceStore(ledger::Blockchain* chain, Clock* clock,
                                 ProvenanceStoreOptions options)
    : chain_(chain), clock_(clock), options_(std::move(options)) {
  registry_ = options_.registry != nullptr ? options_.registry
                                           : obs::Registry::Default();
  for (int i = 0; i < 6; ++i) {
    query_plans_[i] = registry_->GetCounter(
        "query_plans_total", "Executed queries by planner-chosen index",
        {{"index", QueryIndexName(static_cast<QueryIndex>(i))}});
  }
  query_seconds_ = registry_->GetHistogram(
      "query_exec_seconds", "End-to-end Execute() latency",
      obs::LatencyBuckets());
}

std::string ProvenanceStore::OnChainAgentId(const std::string& agent) const {
  if (!options_.hash_agent_ids) return agent;
  crypto::Digest mac =
      crypto::HmacSha256(options_.anonymization_key, ToBytes(agent));
  return "anon-" + HexEncode(mac.data(), 8);
}

ledger::Transaction ProvenanceStore::MakeTx(Bytes payload,
                                            const crypto::PrivateKey* signer,
                                            uint64_t nonce) const {
  if (signer != nullptr) {
    return ledger::Transaction::MakeSigned("prov/record", options_.channel,
                                           std::move(payload), *signer,
                                           clock_->NowMicros(), nonce);
  }
  return ledger::Transaction::MakeSystem("prov/record", options_.channel,
                                         std::move(payload),
                                         clock_->NowMicros(), nonce);
}

Status ProvenanceStore::CheckNotAnchored(const std::string& record_id) const {
  if (graph_.HasRecord(record_id) || pending_ids_.count(record_id)) {
    return Status::AlreadyExists("record already anchored: " + record_id);
  }
  return Status::OK();
}

Status ProvenanceStore::Buffer(ProvenanceRecord&& record,
                               const crypto::PrivateKey* signer) {
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  PROVLEDGER_RETURN_NOT_OK(CheckNotAnchored(record.record_id));
  ++nonce_;
  // Encode once; the encoding travels into the transaction payload and the
  // record itself moves into the pending buffer — no further full copies.
  pending_.push_back(MakeTx(record.Encode(), signer, nonce_));
  pending_ids_.insert(record.record_id);
  pending_records_.push_back(std::move(record));
  return Status::OK();
}

Status ProvenanceStore::Anchor(const ProvenanceRecord& record,
                               const crypto::PrivateKey* signer) {
  ProvenanceRecord anchored = record;
  anchored.agent = OnChainAgentId(record.agent);
  PROVLEDGER_RETURN_NOT_OK(Buffer(std::move(anchored), signer));
  if (pending_.size() >= options_.batch_size) {
    return Flush();
  }
  return Status::OK();
}

Status ProvenanceStore::AnchorBatch(
    const std::vector<ProvenanceRecord>& records,
    const crypto::PrivateKey* signer) {
  // All-or-nothing: a failed AnchorBatch must not leave this batch's
  // records buffered, or they would block retries and then ride along on
  // an unrelated later Flush despite the reported error.
  const size_t mark = pending_.size();
  const uint64_t nonce_mark = nonce_;
  auto unbuffer_batch = [&]() {
    for (size_t i = mark; i < pending_records_.size(); ++i) {
      pending_ids_.erase(pending_records_[i].record_id);
    }
    pending_.resize(mark);
    pending_records_.resize(mark);
    nonce_ = nonce_mark;
  };
  for (const auto& record : records) {
    ProvenanceRecord anchored = record;
    anchored.agent = OnChainAgentId(record.agent);
    Status s = Buffer(std::move(anchored), signer);
    if (!s.ok()) {
      unbuffer_batch();
      return s;
    }
  }
  Status flushed = Flush();
  // A still-buffered batch after a failed flush means the chain refused the
  // block: hand the records back to the caller instead of letting them
  // linger (a drained buffer means the block landed and only indexing
  // failed — those records are on-chain and must stay).
  if (!flushed.ok() && pending_.size() > mark) unbuffer_batch();
  return flushed;
}

Status ProvenanceStore::Flush() {
  if (pending_.empty()) return Status::OK();
  // Append before touching the buffers: on failure (block too large,
  // signature policy, ...) everything stays pending so the caller can fix
  // the chain options and retry without losing records.
  auto block_hash =
      chain_->Append(pending_, clock_->NowMicros(), options_.proposer);
  if (!block_hash.ok()) return block_hash.status();

  std::vector<ledger::Transaction> txs = std::move(pending_);
  std::vector<ProvenanceRecord> records = std::move(pending_records_);
  pending_.clear();
  pending_records_.clear();
  pending_ids_.clear();
  // The block is on the chain now, so every record of the batch must be
  // indexed — bailing at the first failure would leave on-chain records
  // invisible to queries and audits. Index them all, aggregate the errors.
  Status first_error;
  size_t failures = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    Status s = IndexRecord(std::move(records[i]), txs[i].Id());
    if (!s.ok()) {
      ++failures;
      if (first_error.ok()) first_error = std::move(s);
    }
  }
  if (failures > 0) {
    return Status::Internal(
        "flush indexed " + std::to_string(records.size() - failures) + "/" +
        std::to_string(records.size()) + " anchored records; first error: " +
        first_error.ToString());
  }
  return Status::OK();
}

Status ProvenanceStore::IndexRecord(ProvenanceRecord&& record,
                                    const crypto::Digest& txid) {
  PROVLEDGER_RETURN_NOT_OK(EnsureIndexLoaded());
  // The id is needed after the record moves into the graph.
  std::string key = "rec/" + record.record_id;
  PROVLEDGER_RETURN_NOT_OK(graph_.AddRecord(std::move(record)));
  PROVLEDGER_RETURN_NOT_OK(index_.Put(std::move(key),
                                      crypto::DigestToBytes(txid)));
  ++anchored_count_;
  return Status::OK();
}

Result<PreparedRecord> ProvenanceStore::PrepareRecord(
    ProvenanceRecord&& record, uint64_t nonce,
    const crypto::PrivateKey* signer, Encoder* scratch) const {
  record.agent = OnChainAgentId(record.agent);
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  PreparedRecord prepared;
  prepared.tx = MakeTx(record.Encode(), signer, nonce);
  // One encoding serves both digests the commit path will need — after
  // this, no byte of the transaction is ever hashed again. The encoding is
  // a throwaway, so a caller-provided scratch encoder (ingest shard
  // workers keep one per thread) makes it allocation-free in steady state.
  Encoder local;
  Encoder& enc = scratch != nullptr ? *scratch : local;
  enc.Clear();
  prepared.tx.EncodeTo(&enc);
  prepared.txid = crypto::Sha256::Hash(enc.buffer());
  prepared.leaf = crypto::MerkleTree::LeafHash(enc.buffer());
  prepared.record = std::move(record);
  return prepared;
}

Status ProvenanceStore::AnchorPrepared(PreparedBatch* batch,
                                       size_t* committed) {
  if (committed != nullptr) *committed = 0;
  if (batch->records.empty()) {
    // Contract: the root never outlives the call (an empty batch has no
    // leaves for it to describe, so a refill must not inherit it).
    batch->merkle_root.reset();
    return Status::OK();
  }
  PROVLEDGER_RETURN_NOT_OK(EnsureIndexLoaded());

  // The precomputed root matches only the batch exactly as prepared, so
  // it is consumed here — never left behind on a batch whose records were
  // taken (a reused PreparedBatch would otherwise anchor a later block
  // under this stale root). It goes back only on the refusal hand-back,
  // and only when the handed-back records still match it exactly.
  std::optional<crypto::Digest> precomputed = std::move(batch->merkle_root);
  batch->merkle_root.reset();

  // Duplicates (already anchored, pending, or repeated within the batch)
  // must drop *before* the block forms: an on-chain duplicate would be
  // refused by the graph and become invisible to queries forever.
  std::vector<PreparedRecord> unique;
  unique.reserve(batch->records.size());
  std::unordered_set<std::string> batch_ids;
  Status first_drop;
  size_t dropped = 0;
  for (auto& prepared : batch->records) {
    Status s = CheckNotAnchored(prepared.record.record_id);
    if (s.ok() && !batch_ids.insert(prepared.record.record_id).second) {
      s = Status::AlreadyExists("duplicate record in prepared batch: " +
                                prepared.record.record_id);
    }
    if (!s.ok()) {
      ++dropped;
      if (first_drop.ok()) first_drop = std::move(s);
      continue;
    }
    unique.push_back(std::move(prepared));
  }
  batch->records.clear();

  if (!unique.empty()) {
    std::vector<ledger::PreparedTx> txs;
    txs.reserve(unique.size());
    uint64_t max_nonce = nonce_;
    for (auto& prepared : unique) {
      if (prepared.tx.nonce > max_nonce) max_nonce = prepared.tx.nonce;
      txs.push_back(ledger::PreparedTx{std::move(prepared.tx), prepared.txid,
                                       prepared.leaf});
    }
    // Any drop changes the leaf set, so the precomputed root only applies
    // to an intact batch; otherwise rebuild from the cached digests.
    const crypto::Digest* root =
        dropped == 0 && precomputed ? &*precomputed : nullptr;
    auto block_hash = chain_->AppendPrepared(&txs, clock_->NowMicros(),
                                            options_.proposer,
                                            /*nonce=*/0, root);
    // Chain refusal leaves no store state mutated, and the chain handed
    // the transactions back — reassemble the batch (minus dropped
    // duplicates) so the caller can retry it wholesale. Same
    // no-record-loss contract as AnchorBatch's un-buffering. The root
    // goes back only when nothing was dropped: a batch missing its
    // dropped records no longer matches it, and a retry anchoring under
    // the stale root would corrupt the chain.
    if (!block_hash.ok()) {
      for (size_t i = 0; i < unique.size(); ++i) {
        unique[i].tx = std::move(txs[i].tx);
      }
      if (dropped == 0) batch->merkle_root = std::move(precomputed);
      batch->records = std::move(unique);
      return block_hash.status();
    }
    // Track issued nonces so later Anchor()/Flush() calls never reuse one.
    nonce_ = max_nonce;

    // The block is on the chain: index everything, aggregate failures
    // (same contract as Flush). `committed` counts only fully-landed
    // records (on-chain AND indexed) — an indexing casualty is a failure
    // to the caller even though its bytes are on the chain.
    Status first_error;
    size_t failures = 0;
    for (auto& prepared : unique) {
      Status s = IndexRecord(std::move(prepared.record), prepared.txid);
      if (!s.ok()) {
        ++failures;
        if (first_error.ok()) first_error = std::move(s);
      }
    }
    if (committed != nullptr) *committed = unique.size() - failures;
    if (failures > 0) {
      return Status::Internal(
          "prepared anchor indexed " +
          std::to_string(unique.size() - failures) + "/" +
          std::to_string(unique.size()) +
          " on-chain records; first error: " + first_error.ToString());
    }
  }
  if (dropped > 0) {
    return Status::AlreadyExists(
        "dropped " + std::to_string(dropped) +
        " duplicate records from prepared batch; first: " +
        first_drop.ToString());
  }
  return Status::OK();
}

Status ProvenanceStore::PublishSnapshot() {
  return PublishSnapshotAt(chain_->height());
}

Status ProvenanceStore::PublishSnapshotAt(uint64_t reflected_height) {
  Encoder body;
  graph_.SaveTo(&body);
  auto bytes = std::make_shared<const Bytes>(body.TakeBuffer());
  const uint64_t epoch = snapshot_epoch_.load(std::memory_order_relaxed) + 1;
  auto snapshot = std::make_shared<const GraphSnapshot>(
      epoch, reflected_height, graph_.record_count(), std::move(bytes));
  // Pointer first, counter second: a reader that observes epoch N can
  // always acquire a snapshot at least that fresh.
  std::atomic_store(&snapshot_, std::move(snapshot));
  snapshot_epoch_.store(epoch, std::memory_order_release);
  return Status::OK();
}

std::shared_ptr<const GraphSnapshot> ProvenanceStore::AcquireSnapshot()
    const {
  return std::atomic_load(&snapshot_);
}

Status ProvenanceStore::EnsureIndexLoaded() const {
  if (lazy_index_.empty()) return Status::OK();
  LazySlice slice = std::move(lazy_index_);
  lazy_index_.clear();
  Decoder dec(slice.data(), slice.length);
  uint32_t count = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU32(&count));
  std::vector<std::pair<std::string, Bytes>> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    Bytes value;
    PROVLEDGER_RETURN_NOT_OK(dec.GetString(&key));
    PROVLEDGER_RETURN_NOT_OK(dec.GetBytes(&value));
    entries.emplace_back(std::move(key), std::move(value));
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot index section");
  }
  // Saved via an ordered iterator, loaded in O(n).
  return index_.LoadSorted(std::move(entries));
}

Result<ProvenanceRecord> ProvenanceStore::GetRecord(
    const std::string& record_id) const {
  return graph_.GetRecord(record_id);
}

bool ProvenanceStore::HasRecord(const std::string& record_id) const {
  return graph_.HasRecord(record_id);
}

QueryResult ProvenanceStore::Execute(const Query& query) const {
  obs::ScopedTimer timer(query_seconds_);
  QueryResult result = graph_.Run(query);
  query_plans_[static_cast<int>(result.index_used)]->Increment();
  return result;
}

size_t ProvenanceStore::Execute(
    const Query& query,
    const std::function<bool(const ProvenanceRecord&)>& visit) const {
  obs::ScopedTimer timer(query_seconds_);
  return graph_.Run(query, visit);
}

QueryExplain ProvenanceStore::Explain(const Query& query) const {
  return graph_.Explain(query);
}

std::string ProvenanceStore::MetricsSnapshot(
    obs::ExpositionFormat format) const {
  return registry_->Exposition(format);
}

std::vector<ProvenanceRecord> ProvenanceStore::SubjectHistory(
    const std::string& subject) const {
  return Execute(Query().WithSubject(subject)).records;
}

std::vector<ProvenanceRecord> ProvenanceStore::ByAgent(
    const std::string& agent) const {
  return Execute(Query().WithAgent(agent)).records;
}

std::vector<ProvenanceRecord> ProvenanceStore::InRange(Timestamp from,
                                                       Timestamp to) const {
  return Execute(Query().Between(from, to)).records;
}

std::vector<std::string> ProvenanceStore::Lineage(
    const std::string& entity) const {
  return graph_.Lineage(entity);
}

Result<crypto::Digest> ProvenanceStore::RecordTxId(
    const std::string& record_id) const {
  PROVLEDGER_RETURN_NOT_OK(EnsureIndexLoaded());
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes txid_bytes,
                              index_.Get("rec/" + record_id));
  return crypto::DigestFromBytes(txid_bytes);
}

Result<ledger::TxProof> ProvenanceStore::ProveRecord(
    const std::string& record_id) const {
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::Digest txid, RecordTxId(record_id));
  return chain_->ProveTransaction(txid);
}

bool ProvenanceStore::VerifyRecordProof(const ProvenanceRecord& record,
                                        const ledger::TxProof& proof) const {
  if (!EnsureIndexLoaded().ok()) return false;
  auto txid_bytes = index_.Get("rec/" + record.record_id);
  if (!txid_bytes.ok()) return false;
  auto txid = crypto::DigestFromBytes(txid_bytes.value());
  if (!txid.ok()) return false;
  auto tx = chain_->GetTransaction(txid.value());
  if (!tx.ok()) return false;
  // The anchored transaction must carry exactly this record's encoding.
  if (tx->payload != record.Encode()) return false;
  return chain_->VerifyTxProof(tx->Encode(), proof);
}

void ProvenanceStore::ResetState() {
  graph_ = ProvenanceGraph();
  index_ = storage::MemKvStore();
  lazy_index_.clear();
  anchored_count_ = 0;
  pending_.clear();
  pending_records_.clear();
  pending_ids_.clear();
  nonce_ = 0;
}

Status ProvenanceStore::ReplayBlock(uint64_t h) {
  const ledger::Block* block = chain_->PeekBlock(h);
  if (block == nullptr) {
    return Status::NotFound("no block at height " + std::to_string(h));
  }
  for (const auto& tx : block->transactions) {
    if (tx.type != "prov/record" || tx.channel != options_.channel) {
      continue;
    }
    PROVLEDGER_ASSIGN_OR_RETURN(ProvenanceRecord record,
                                ProvenanceRecord::Decode(tx.payload));
    PROVLEDGER_RETURN_NOT_OK(IndexRecord(std::move(record), tx.Id()));
    // Resume nonce issuance past everything already on the chain, so
    // post-replay transactions never reuse an anchored nonce.
    if (tx.nonce > nonce_) nonce_ = tx.nonce;
  }
  return Status::OK();
}

Status ProvenanceStore::ApplyChainBlock(uint64_t height) {
  return ReplayBlock(height);
}

Status ProvenanceStore::RebuildFromChain() {
  ResetState();
  Status replayed = [&]() -> Status {
    for (uint64_t h = 0; h <= chain_->height(); ++h) {
      PROVLEDGER_RETURN_NOT_OK(ReplayBlock(h));
    }
    return Status::OK();
  }();
  // A mid-chain failure can leave a block partially indexed — no state a
  // snapshot could truthfully describe (chain_height promises "nothing
  // after it") and no state worth keeping: reset, as LoadSnapshot does.
  if (!replayed.ok()) ResetState();
  // Same contract as LoadSnapshot: the published epoch must describe what
  // the store now holds (rebuilt on success, empty after a failure reset
  // — genesis carries no records), never the pre-rebuild graph.
  Status republished =
      RepublishIfPublished(replayed.ok() ? chain_->height() : 0);
  return replayed.ok() ? republished : replayed;
}

Status ProvenanceStore::RepublishIfPublished(uint64_t reflected_height) {
  // A previously published epoch describes pre-restore state; left in
  // place, readers would keep acquiring a graph whose records may no
  // longer exist in the restored store (and whose chain_height may exceed
  // the actual chain). Re-publish from current state — the epoch counter
  // keeps climbing, preserving reader monotonicity — stamped with the
  // height the restored state actually reflects, not the chain's head.
  if (std::atomic_load(&snapshot_) == nullptr) return Status::OK();
  return PublishSnapshotAt(reflected_height);
}

Status ProvenanceStore::SaveSnapshot(const std::string& path) const {
  Encoder body;
  body.PutString(options_.channel);
  const uint64_t height = chain_->height();
  body.PutU64(height);
  // Bind the snapshot to the exact chain position (height + block hash) so
  // a restart against a different or reorged chain refuses to load it. The
  // hash comes from the chain's height index, not a header re-hash.
  auto head_hash = chain_->BlockHashAt(height);
  if (!head_hash.ok()) {
    return Status::Internal("chain has no block at its own height");
  }
  body.PutRaw(crypto::DigestToBytes(head_hash.value()));
  body.PutU64(nonce_);
  body.PutU64(anchored_count_);
  graph_.SaveTo(&body);

  // rec/ index as one length-prefixed section. If this store itself was
  // snapshot-restored and never needed the index, its raw section passes
  // straight through (every mutation path hydrates first, so raw implies
  // unchanged).
  if (!lazy_index_.empty()) {
    body.PutU32(static_cast<uint32_t>(lazy_index_.length));
    body.PutRaw(lazy_index_.data(), lazy_index_.length);
  } else {
    Encoder section;
    section.PutU32(static_cast<uint32_t>(index_.ApproximateCount()));
    auto it = index_.NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      section.PutString(it->key());
      section.PutBytes(it->value());
    }
    body.PutU32(static_cast<uint32_t>(section.size()));
    body.PutRaw(section.buffer());
  }

  Encoder file;
  file.PutRaw(Bytes(kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic)));
  file.PutU32(static_cast<uint32_t>(body.size()));
  file.PutU64(Hash64(body.buffer()));
  file.PutRaw(body.buffer());
  return WriteFileAtomic(path, file.buffer());
}

Status ProvenanceStore::LoadSnapshot(const std::string& path) {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes data_owned, ReadFileToBytes(path));
  // The buffer is shared: the graph and index keep zero-copy slices into
  // it, deferring their decoding to first use; the last hydration drops
  // the final reference.
  auto data = std::make_shared<const Bytes>(std::move(data_owned));
  Decoder file(*data);
  Bytes magic;
  PROVLEDGER_RETURN_NOT_OK(file.GetRaw(sizeof(kSnapshotMagic), &magic));
  if (!std::equal(magic.begin(), magic.end(), kSnapshotMagic)) {
    return Status::Corruption("not a provenance snapshot: " + path);
  }
  uint32_t body_len = 0;
  uint64_t checksum = 0;
  PROVLEDGER_RETURN_NOT_OK(file.GetU32(&body_len));
  PROVLEDGER_RETURN_NOT_OK(file.GetU64(&checksum));
  // The body is checksummed and decoded in place — no second copy of a
  // multi-megabyte buffer on the restart path.
  if (file.remaining() != body_len) {
    return Status::Corruption("snapshot body length mismatch: " + path);
  }
  if (Hash64(data->data() + (data->size() - body_len), body_len) !=
      checksum) {
    return Status::Corruption("snapshot checksum mismatch: " + path);
  }

  Decoder& dec = file;
  std::string channel;
  PROVLEDGER_RETURN_NOT_OK(dec.GetString(&channel));
  if (channel != options_.channel) {
    return Status::FailedPrecondition("snapshot is for channel '" + channel +
                                      "', store uses '" + options_.channel +
                                      "'");
  }
  uint64_t snapshot_height = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&snapshot_height));
  Bytes hash_raw;
  PROVLEDGER_RETURN_NOT_OK(dec.GetRaw(crypto::kSha256DigestSize, &hash_raw));
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::Digest snapshot_hash,
                              crypto::DigestFromBytes(hash_raw));
  if (snapshot_height > chain_->height()) {
    return Status::FailedPrecondition(
        "snapshot height " + std::to_string(snapshot_height) +
        " is past chain height " + std::to_string(chain_->height()));
  }
  auto at = chain_->BlockHashAt(snapshot_height);
  if (!at.ok() || at.value() != snapshot_hash) {
    return Status::FailedPrecondition(
        "snapshot does not match this chain at height " +
        std::to_string(snapshot_height));
  }

  uint64_t nonce = 0, anchored = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&nonce));
  PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&anchored));

  ResetState();
  Status loaded = [&]() -> Status {
    PROVLEDGER_RETURN_NOT_OK(graph_.LoadFrom(&dec, data));
    PROVLEDGER_RETURN_NOT_OK(GetSlice(&dec, data, &lazy_index_));
    // Sanity before deferring: the section's entry count must match the
    // graph (full parsing waits for the first proof/audit/anchor).
    Decoder peek(lazy_index_.data(), lazy_index_.length);
    uint32_t index_count = 0;
    PROVLEDGER_RETURN_NOT_OK(peek.GetU32(&index_count));
    if (index_count != graph_.record_count()) {
      return Status::Corruption("snapshot index/graph record count mismatch");
    }
    if (!dec.AtEnd()) {
      return Status::Corruption("trailing bytes in snapshot body");
    }
    nonce_ = nonce;
    anchored_count_ = anchored;
    // Tail replay: everything anchored after the snapshot was taken.
    for (uint64_t h = snapshot_height + 1; h <= chain_->height(); ++h) {
      PROVLEDGER_RETURN_NOT_OK(ReplayBlock(h));
    }
    return Status::OK();
  }();
  if (!loaded.ok()) ResetState();
  // Whether the restore landed or reset the store, the published epoch
  // must describe what the store now holds, not what it held before: the
  // full chain height on success, height 0 after a failure reset (genesis
  // carries no provenance records, so an empty graph reflects it).
  Status republished =
      RepublishIfPublished(loaded.ok() ? chain_->height() : 0);
  return loaded.ok() ? republished : loaded;
}

Status ProvenanceStore::Recover(const std::string& snapshot_path) {
  if (FileExists(snapshot_path)) {
    Status s = LoadSnapshot(snapshot_path);
    // A snapshot for another chain position is stale, not fatal; corrupt
    // contents keep failing loudly so operators notice.
    if (!s.IsFailedPrecondition()) return s;
  }
  return RebuildFromChain();
}

Result<size_t> ProvenanceStore::AuditAll() const {
  PROVLEDGER_RETURN_NOT_OK(EnsureIndexLoaded());
  size_t verified = 0;
  auto it = index_.NewIterator();
  for (it->Seek("rec/"); it->Valid(); it->Next()) {
    if (it->key().compare(0, 4, "rec/") != 0) break;
    auto txid = crypto::DigestFromBytes(it->value());
    if (!txid.ok()) return txid.status();
    auto tx = chain_->GetTransaction(txid.value());
    if (!tx.ok()) {
      return Status::Corruption("anchored record missing from chain: " +
                                it->key());
    }
    auto proof = chain_->ProveTransaction(txid.value());
    if (!proof.ok()) return proof.status();
    if (!chain_->VerifyTxProof(tx->Encode(), proof.value())) {
      return Status::Corruption("merkle verification failed for " +
                                it->key());
    }
    ++verified;
  }
  return verified;
}

}  // namespace prov
}  // namespace provledger
