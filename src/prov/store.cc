#include "prov/store.h"

namespace provledger {
namespace prov {

ProvenanceStore::ProvenanceStore(ledger::Blockchain* chain, Clock* clock,
                                 ProvenanceStoreOptions options)
    : chain_(chain), clock_(clock), options_(std::move(options)) {}

std::string ProvenanceStore::OnChainAgentId(const std::string& agent) const {
  if (!options_.hash_agent_ids) return agent;
  crypto::Digest mac =
      crypto::HmacSha256(options_.anonymization_key, ToBytes(agent));
  return "anon-" + HexEncode(mac.data(), 8);
}

ledger::Transaction ProvenanceStore::MakeTx(
    const ProvenanceRecord& record, const crypto::PrivateKey* signer) const {
  if (signer != nullptr) {
    return ledger::Transaction::MakeSigned("prov/record", options_.channel,
                                           record.Encode(), *signer,
                                           clock_->NowMicros(), nonce_);
  }
  return ledger::Transaction::MakeSystem("prov/record", options_.channel,
                                         record.Encode(),
                                         clock_->NowMicros(), nonce_);
}

Status ProvenanceStore::Anchor(const ProvenanceRecord& record,
                               const crypto::PrivateKey* signer) {
  ProvenanceRecord anchored = record;
  anchored.agent = OnChainAgentId(record.agent);
  PROVLEDGER_RETURN_NOT_OK(anchored.Validate());
  if (graph_.HasRecord(anchored.record_id)) {
    return Status::AlreadyExists("record already anchored: " +
                                 anchored.record_id);
  }

  ++nonce_;
  pending_.push_back(MakeTx(anchored, signer));
  pending_records_.push_back(std::move(anchored));
  if (pending_.size() >= options_.batch_size) {
    return Flush();
  }
  return Status::OK();
}

Status ProvenanceStore::AnchorBatch(
    const std::vector<ProvenanceRecord>& records,
    const crypto::PrivateKey* signer) {
  for (const auto& record : records) {
    ProvenanceRecord anchored = record;
    anchored.agent = OnChainAgentId(record.agent);
    PROVLEDGER_RETURN_NOT_OK(anchored.Validate());
    if (graph_.HasRecord(anchored.record_id)) {
      return Status::AlreadyExists("record already anchored: " +
                                   anchored.record_id);
    }
    ++nonce_;
    pending_.push_back(MakeTx(anchored, signer));
    pending_records_.push_back(std::move(anchored));
  }
  return Flush();
}

Status ProvenanceStore::Flush() {
  if (pending_.empty()) return Status::OK();
  std::vector<ledger::Transaction> txs = std::move(pending_);
  std::vector<ProvenanceRecord> records = std::move(pending_records_);
  pending_.clear();
  pending_records_.clear();

  auto block_hash =
      chain_->Append(txs, clock_->NowMicros(), options_.proposer);
  if (!block_hash.ok()) return block_hash.status();

  for (size_t i = 0; i < records.size(); ++i) {
    PROVLEDGER_RETURN_NOT_OK(IndexRecord(records[i], txs[i].Id()));
  }
  return Status::OK();
}

Status ProvenanceStore::IndexRecord(const ProvenanceRecord& record,
                                    const crypto::Digest& txid) {
  PROVLEDGER_RETURN_NOT_OK(graph_.AddRecord(record));
  PROVLEDGER_RETURN_NOT_OK(index_.Put("rec/" + record.record_id,
                                      crypto::DigestToBytes(txid)));
  ++anchored_count_;
  return Status::OK();
}

Result<ProvenanceRecord> ProvenanceStore::GetRecord(
    const std::string& record_id) const {
  return graph_.GetRecord(record_id);
}

bool ProvenanceStore::HasRecord(const std::string& record_id) const {
  return graph_.HasRecord(record_id);
}

std::vector<ProvenanceRecord> ProvenanceStore::SubjectHistory(
    const std::string& subject) const {
  return graph_.SubjectHistory(subject);
}

std::vector<ProvenanceRecord> ProvenanceStore::ByAgent(
    const std::string& agent) const {
  return graph_.ByAgent(agent);
}

std::vector<std::string> ProvenanceStore::Lineage(
    const std::string& entity) const {
  return graph_.Lineage(entity);
}

Result<ledger::TxProof> ProvenanceStore::ProveRecord(
    const std::string& record_id) const {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes txid_bytes,
                              index_.Get("rec/" + record_id));
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::Digest txid,
                              crypto::DigestFromBytes(txid_bytes));
  return chain_->ProveTransaction(txid);
}

bool ProvenanceStore::VerifyRecordProof(const ProvenanceRecord& record,
                                        const ledger::TxProof& proof) const {
  auto txid_bytes = index_.Get("rec/" + record.record_id);
  if (!txid_bytes.ok()) return false;
  auto txid = crypto::DigestFromBytes(txid_bytes.value());
  if (!txid.ok()) return false;
  auto tx = chain_->GetTransaction(txid.value());
  if (!tx.ok()) return false;
  // The anchored transaction must carry exactly this record's encoding.
  if (tx->payload != record.Encode()) return false;
  return chain_->VerifyTxProof(tx->Encode(), proof);
}

Status ProvenanceStore::RebuildFromChain() {
  graph_ = ProvenanceGraph();
  index_ = storage::MemKvStore();
  anchored_count_ = 0;
  pending_.clear();
  pending_records_.clear();

  for (uint64_t h = 0; h <= chain_->height(); ++h) {
    PROVLEDGER_ASSIGN_OR_RETURN(ledger::Block block, chain_->GetBlock(h));
    for (const auto& tx : block.transactions) {
      if (tx.type != "prov/record" || tx.channel != options_.channel) {
        continue;
      }
      PROVLEDGER_ASSIGN_OR_RETURN(ProvenanceRecord record,
                                  ProvenanceRecord::Decode(tx.payload));
      PROVLEDGER_RETURN_NOT_OK(IndexRecord(record, tx.Id()));
    }
  }
  return Status::OK();
}

Result<size_t> ProvenanceStore::AuditAll() const {
  size_t verified = 0;
  auto it = index_.NewIterator();
  for (it->Seek("rec/"); it->Valid(); it->Next()) {
    if (it->key().compare(0, 4, "rec/") != 0) break;
    auto txid = crypto::DigestFromBytes(it->value());
    if (!txid.ok()) return txid.status();
    auto tx = chain_->GetTransaction(txid.value());
    if (!tx.ok()) {
      return Status::Corruption("anchored record missing from chain: " +
                                it->key());
    }
    auto proof = chain_->ProveTransaction(txid.value());
    if (!proof.ok()) return proof.status();
    if (!chain_->VerifyTxProof(tx->Encode(), proof.value())) {
      return Status::Corruption("merkle verification failed for " +
                                it->key());
    }
    ++verified;
  }
  return verified;
}

}  // namespace prov
}  // namespace provledger
