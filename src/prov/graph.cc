#include "prov/graph.h"

#include <algorithm>

namespace provledger {
namespace prov {

uint32_t ProvenanceGraph::InternEntity(const std::string& entity) {
  uint32_t eid = entities_.Intern(entity);
  if (eid >= generated_by_.size()) {
    generated_by_.resize(eid + 1);
    used_by_.resize(eid + 1);
    derived_from_.resize(eid + 1);
    derivations_.resize(eid + 1);
    by_subject_.resize(eid + 1);
    subject_dirty_.resize(eid + 1, 0);
  }
  return eid;
}

namespace {
// Sorted-vector set insert; true when `x` was newly added.
bool InsertSortedUnique(std::vector<uint32_t>* v, uint32_t x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}
}  // namespace

void ProvenanceGraph::AppendByTime(std::vector<uint32_t>* postings,
                                   uint32_t rid, uint8_t* dirty) {
  if (!postings->empty() &&
      meta_[postings->back()].timestamp > meta_[rid].timestamp) {
    *dirty = 1;
  }
  postings->push_back(rid);
}

void ProvenanceGraph::EnsureTimeSorted(std::vector<uint32_t>* postings,
                                       uint8_t* dirty) const {
  if (!*dirty) return;
  // Record ids increase in ingest order, so sorting (timestamp, rid)
  // reproduces the documented "(timestamp, ingest)" tie order.
  std::sort(postings->begin(), postings->end(),
            [this](uint32_t a, uint32_t b) {
              Timestamp ta = meta_[a].timestamp, tb = meta_[b].timestamp;
              return ta != tb ? ta < tb : a < b;
            });
  *dirty = 0;
}

Status ProvenanceGraph::AddRecord(const ProvenanceRecord& record) {
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  if (record_ids_.Find(record.record_id) != InternTable::kNone) {
    return Status::AlreadyExists("record already in graph: " +
                                 record.record_id);
  }

  uint32_t rid = record_ids_.Intern(record.record_id);
  records_.push_back(record);
  meta_.emplace_back();
  RecordMeta& meta = meta_.back();
  meta.timestamp = record.timestamp;
  meta.subject = InternEntity(record.subject);

  meta.inputs.reserve(record.inputs.size());
  for (const auto& in : record.inputs) {
    uint32_t eid = InternEntity(in);
    meta.inputs.push_back(eid);
    used_by_[eid].push_back(rid);
    ++edge_count_;
  }

  // Effective outputs: if none are declared, the operation produces a new
  // logical version of the subject entity.
  if (record.outputs.empty()) {
    meta.outputs.push_back(meta.subject);
  } else {
    meta.outputs.reserve(record.outputs.size());
    for (const auto& out : record.outputs) {
      meta.outputs.push_back(InternEntity(out));
    }
  }
  // wasGeneratedBy + wasDerivedFrom: each output entity.
  for (uint32_t out : meta.outputs) {
    generated_by_[out].push_back(rid);
    ++edge_count_;
    for (uint32_t in : meta.inputs) {
      if (in == out) continue;
      if (InsertSortedUnique(&derived_from_[out], in)) ++edge_count_;
      InsertSortedUnique(&derivations_[in], out);
    }
  }

  AppendByTime(&by_subject_[meta.subject], rid, &subject_dirty_[meta.subject]);
  uint32_t aid = agents_.Intern(record.agent);
  if (aid >= by_agent_.size()) {
    by_agent_.resize(aid + 1);
    agent_dirty_.resize(aid + 1, 0);
  }
  AppendByTime(&by_agent_[aid], rid, &agent_dirty_[aid]);

  // Global time index; same append-and-mark-dirty scheme.
  std::pair<Timestamp, uint32_t> entry{record.timestamp, rid};
  if (!by_time_.empty() && by_time_.back() > entry) time_dirty_ = 1;
  by_time_.push_back(entry);

  // wasAssociatedWith: activity -> agent.
  ++edge_count_;
  return Status::OK();
}

bool ProvenanceGraph::HasRecord(const std::string& record_id) const {
  return record_ids_.Find(record_id) != InternTable::kNone;
}

Result<ProvenanceRecord> ProvenanceGraph::GetRecord(
    const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid == InternTable::kNone) {
    return Status::NotFound("no such record: " + record_id);
  }
  return records_[rid];
}

std::vector<std::string> ProvenanceGraph::EntityClosure(
    const std::vector<std::vector<uint32_t>>& adjacency,
    const std::string& start) const {
  std::vector<std::string> out;
  uint32_t s = entities_.Find(start);
  if (s == InternTable::kNone) return out;

  Bitset seen(entities_.size());
  seen.TestAndSet(s);
  // `reached` doubles as the BFS queue: ids are only appended, and `head`
  // walks it front to back.
  std::vector<uint32_t> reached;
  reached.push_back(s);
  for (size_t head = 0; head < reached.size(); ++head) {
    for (uint32_t next : adjacency[reached[head]]) {
      if (seen.TestAndSet(next)) reached.push_back(next);
    }
  }
  out.reserve(reached.size() - 1);
  for (size_t i = 1; i < reached.size(); ++i) {
    out.push_back(entities_.Name(reached[i]));
  }
  return out;
}

std::vector<std::string> ProvenanceGraph::Lineage(
    const std::string& entity) const {
  return EntityClosure(derived_from_, entity);
}

std::vector<std::string> ProvenanceGraph::Descendants(
    const std::string& entity) const {
  return EntityClosure(derivations_, entity);
}

std::vector<ProvenanceRecord> ProvenanceGraph::MaterializeRecords(
    const std::vector<uint32_t>& rids) const {
  std::vector<ProvenanceRecord> out;
  out.reserve(rids.size());
  for (uint32_t rid : rids) out.push_back(records_[rid]);
  return out;
}

std::vector<ProvenanceRecord> ProvenanceGraph::SubjectHistory(
    const std::string& subject) const {
  uint32_t eid = entities_.Find(subject);
  if (eid == InternTable::kNone) return {};
  EnsureTimeSorted(&by_subject_[eid], &subject_dirty_[eid]);
  return MaterializeRecords(by_subject_[eid]);
}

std::vector<ProvenanceRecord> ProvenanceGraph::ByAgent(
    const std::string& agent) const {
  uint32_t aid = agents_.Find(agent);
  if (aid == InternTable::kNone) return {};
  EnsureTimeSorted(&by_agent_[aid], &agent_dirty_[aid]);
  return MaterializeRecords(by_agent_[aid]);
}

std::vector<ProvenanceRecord> ProvenanceGraph::InRange(Timestamp from,
                                                       Timestamp to) const {
  std::vector<ProvenanceRecord> out;
  if (from > to) return out;
  if (time_dirty_) {
    std::sort(by_time_.begin(), by_time_.end());
    time_dirty_ = 0;
  }
  auto lo = std::lower_bound(by_time_.begin(), by_time_.end(),
                             std::pair<Timestamp, uint32_t>{from, 0});
  auto hi = std::upper_bound(
      by_time_.begin(), by_time_.end(),
      std::pair<Timestamp, uint32_t>{to, InternTable::kNone});
  out.reserve(hi - lo);
  for (auto it = lo; it != hi; ++it) out.push_back(records_[it->second]);
  return out;
}

void ProvenanceGraph::AppendDownstream(uint32_t rid, Bitset* seen,
                                       std::vector<uint32_t>* out) const {
  for (uint32_t eid : meta_[rid].outputs) {
    for (uint32_t consumer : used_by_[eid]) {
      if (consumer != rid && seen->TestAndSet(consumer)) {
        out->push_back(consumer);
      }
    }
  }
}

std::vector<uint32_t> ProvenanceGraph::DownstreamClosure(uint32_t rid) const {
  // BFS over the consumption graph: every record that used (transitively)
  // this record's outputs (SciBlock semantics).
  Bitset seen(records_.size());
  seen.TestAndSet(rid);
  std::vector<uint32_t> reached;
  AppendDownstream(rid, &seen, &reached);
  for (size_t head = 0; head < reached.size(); ++head) {
    AppendDownstream(reached[head], &seen, &reached);
  }
  return reached;
}

Result<std::vector<std::string>> ProvenanceGraph::Invalidate(
    const std::string& record_id, Timestamp at, const std::string& reason) {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid == InternTable::kNone) {
    return Status::NotFound("no such record: " + record_id);
  }
  if (invalidations_.count(rid)) {
    return Status::AlreadyExists("record already invalidated: " + record_id);
  }

  std::vector<uint32_t> cascade = DownstreamClosure(rid);
  std::vector<std::string> order;
  order.reserve(cascade.size() + 1);
  order.push_back(record_id);
  for (uint32_t id : cascade) order.push_back(record_ids_.Name(id));

  for (uint32_t id : cascade) {
    if (invalidations_.count(id)) continue;  // already invalid from earlier
    Invalidation inv;
    inv.record_id = record_ids_.Name(id);
    inv.at = at;
    inv.reason = reason;
    inv.cascaded = true;
    invalidations_.emplace(id, std::move(inv));
  }
  Invalidation root;
  root.record_id = record_id;
  root.at = at;
  root.reason = reason;
  root.cascaded = false;
  invalidations_.emplace(rid, std::move(root));
  return order;
}

bool ProvenanceGraph::IsInvalidated(const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  return rid != InternTable::kNone && invalidations_.count(rid) > 0;
}

Result<Invalidation> ProvenanceGraph::GetInvalidation(
    const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid != InternTable::kNone) {
    auto it = invalidations_.find(rid);
    if (it != invalidations_.end()) return it->second;
  }
  return Status::NotFound("record not invalidated: " + record_id);
}

std::vector<std::string> ProvenanceGraph::ReexecutionSet(
    const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid == InternTable::kNone) return {};
  // Downstream closure over the consumption graph: exactly the activities
  // that must re-run once `record_id` is invalidated and repaired.
  std::vector<uint32_t> cascade = DownstreamClosure(rid);
  std::vector<std::string> out;
  out.reserve(cascade.size());
  for (uint32_t id : cascade) out.push_back(record_ids_.Name(id));
  return out;
}

}  // namespace prov
}  // namespace provledger
