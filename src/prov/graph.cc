#include "prov/graph.h"

#include <algorithm>
#include <deque>

namespace provledger {
namespace prov {

Status ProvenanceGraph::AddRecord(const ProvenanceRecord& record) {
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  if (records_.count(record.record_id)) {
    return Status::AlreadyExists("record already in graph: " +
                                 record.record_id);
  }

  // Effective outputs: if none are declared, the operation produces a new
  // logical version of the subject entity.
  std::vector<std::string> outputs = record.outputs;
  if (outputs.empty()) outputs.push_back(record.subject);

  records_.emplace(record.record_id, record);
  by_agent_[record.agent].push_back(record.record_id);
  by_subject_[record.subject].push_back(record.record_id);
  entity_versions_.insert(record.subject);

  // used: activity -> each input entity.
  for (const auto& in : record.inputs) {
    entity_versions_.insert(in);
    used_by_[in].push_back(record.record_id);
    ++edge_count_;
  }
  // wasGeneratedBy + wasDerivedFrom: each output entity.
  for (const auto& out : outputs) {
    entity_versions_.insert(out);
    generated_by_[out].push_back(record.record_id);
    ++edge_count_;
    for (const auto& in : record.inputs) {
      if (in == out) continue;
      derived_from_[out].insert(in);
      derivations_[in].insert(out);
      ++edge_count_;
    }
  }
  // wasAssociatedWith: activity -> agent.
  ++edge_count_;
  return Status::OK();
}

bool ProvenanceGraph::HasRecord(const std::string& record_id) const {
  return records_.count(record_id) > 0;
}

Result<ProvenanceRecord> ProvenanceGraph::GetRecord(
    const std::string& record_id) const {
  auto it = records_.find(record_id);
  if (it == records_.end()) {
    return Status::NotFound("no such record: " + record_id);
  }
  return it->second;
}

namespace {
// Generic BFS over an adjacency map of entity -> set<entity>.
std::vector<std::string> Closure(
    const std::map<std::string, std::set<std::string>>& adjacency,
    const std::string& start) {
  std::vector<std::string> out;
  std::set<std::string> seen{start};
  std::deque<std::string> frontier{start};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const auto& next : it->second) {
      if (seen.insert(next).second) {
        out.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  return out;
}
}  // namespace

std::vector<std::string> ProvenanceGraph::Lineage(
    const std::string& entity) const {
  return Closure(derived_from_, entity);
}

std::vector<std::string> ProvenanceGraph::Descendants(
    const std::string& entity) const {
  return Closure(derivations_, entity);
}

namespace {
std::vector<ProvenanceRecord> SortByTime(std::vector<ProvenanceRecord> recs) {
  std::stable_sort(recs.begin(), recs.end(),
                   [](const ProvenanceRecord& a, const ProvenanceRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return recs;
}
}  // namespace

std::vector<ProvenanceRecord> ProvenanceGraph::SubjectHistory(
    const std::string& subject) const {
  std::vector<ProvenanceRecord> out;
  auto it = by_subject_.find(subject);
  if (it == by_subject_.end()) return out;
  for (const auto& id : it->second) out.push_back(records_.at(id));
  return SortByTime(std::move(out));
}

std::vector<ProvenanceRecord> ProvenanceGraph::ByAgent(
    const std::string& agent) const {
  std::vector<ProvenanceRecord> out;
  auto it = by_agent_.find(agent);
  if (it == by_agent_.end()) return out;
  for (const auto& id : it->second) out.push_back(records_.at(id));
  return SortByTime(std::move(out));
}

std::vector<ProvenanceRecord> ProvenanceGraph::InRange(Timestamp from,
                                                       Timestamp to) const {
  std::vector<ProvenanceRecord> out;
  for (const auto& [_, rec] : records_) {
    if (rec.timestamp >= from && rec.timestamp <= to) out.push_back(rec);
  }
  return SortByTime(std::move(out));
}

std::vector<std::string> ProvenanceGraph::DownstreamRecords(
    const std::string& record_id) const {
  const ProvenanceRecord& rec = records_.at(record_id);
  std::vector<std::string> outputs = rec.outputs;
  if (outputs.empty()) outputs.push_back(rec.subject);

  std::vector<std::string> downstream;
  std::set<std::string> seen;
  for (const auto& out : outputs) {
    auto it = used_by_.find(out);
    if (it == used_by_.end()) continue;
    for (const auto& consumer : it->second) {
      if (consumer != record_id && seen.insert(consumer).second) {
        downstream.push_back(consumer);
      }
    }
  }
  return downstream;
}

Result<std::vector<std::string>> ProvenanceGraph::Invalidate(
    const std::string& record_id, Timestamp at, const std::string& reason) {
  if (!records_.count(record_id)) {
    return Status::NotFound("no such record: " + record_id);
  }
  if (invalidations_.count(record_id)) {
    return Status::AlreadyExists("record already invalidated: " + record_id);
  }

  // BFS over the consumption graph: every record that used (transitively)
  // this record's outputs is cascade-invalidated (SciBlock semantics).
  std::vector<std::string> order;
  std::deque<std::string> frontier{record_id};
  std::set<std::string> seen{record_id};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    order.push_back(current);
    for (const auto& next : DownstreamRecords(current)) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  for (const auto& id : order) {
    if (invalidations_.count(id)) continue;  // already invalid from earlier
    Invalidation inv;
    inv.record_id = id;
    inv.at = at;
    inv.reason = reason;
    inv.cascaded = (id != record_id);
    invalidations_.emplace(id, std::move(inv));
  }
  return order;
}

bool ProvenanceGraph::IsInvalidated(const std::string& record_id) const {
  return invalidations_.count(record_id) > 0;
}

Result<Invalidation> ProvenanceGraph::GetInvalidation(
    const std::string& record_id) const {
  auto it = invalidations_.find(record_id);
  if (it == invalidations_.end()) {
    return Status::NotFound("record not invalidated: " + record_id);
  }
  return it->second;
}

std::vector<std::string> ProvenanceGraph::ReexecutionSet(
    const std::string& record_id) const {
  if (!records_.count(record_id)) return {};
  // Downstream closure over the consumption graph: exactly the activities
  // that must re-run once `record_id` is invalidated and repaired.
  std::vector<std::string> out;
  std::deque<std::string> frontier{record_id};
  std::set<std::string> seen{record_id};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    for (const auto& next : DownstreamRecords(current)) {
      if (seen.insert(next).second) {
        out.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  return out;
}

}  // namespace prov
}  // namespace provledger
