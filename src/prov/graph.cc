#include "prov/graph.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/thread_pool.h"

namespace provledger {
namespace prov {

uint32_t ProvenanceGraph::InternEntity(const std::string& entity) {
  uint32_t eid = entities_.Intern(entity);
  if (eid >= generated_by_.size()) {
    generated_by_.resize(eid + 1);
    used_by_.resize(eid + 1);
    derived_from_.resize(eid + 1);
    derivations_.resize(eid + 1);
    by_subject_.resize(eid + 1);
    subject_dirty_.resize(eid + 1, 0);
  }
  return eid;
}

namespace {
// Sorted-vector set insert; true when `x` was newly added.
bool InsertSortedUnique(std::vector<uint32_t>* v, uint32_t x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}
}  // namespace

void ProvenanceGraph::AppendByTime(std::vector<uint32_t>* postings,
                                   uint32_t rid, uint8_t* dirty) {
  if (!postings->empty() &&
      meta_[postings->back()].timestamp > meta_[rid].timestamp) {
    *dirty = 1;
  }
  postings->push_back(rid);
}

void ProvenanceGraph::EnsureTimeSorted(std::vector<uint32_t>* postings,
                                       uint8_t* dirty) const {
  if (!*dirty) return;
  // Record ids increase in ingest order, so sorting (timestamp, rid)
  // reproduces the documented "(timestamp, ingest)" tie order.
  std::sort(postings->begin(), postings->end(),
            [this](uint32_t a, uint32_t b) {
              Timestamp ta = meta_[a].timestamp, tb = meta_[b].timestamp;
              return ta != tb ? ta < tb : a < b;
            });
  *dirty = 0;
}

Status ProvenanceGraph::AddRecord(const ProvenanceRecord& record) {
  return AddRecord(ProvenanceRecord(record));
}

Status ProvenanceGraph::AddRecord(ProvenanceRecord&& record) {
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  if (record_ids_.Find(record.record_id) != InternTable::kNone) {
    return Status::AlreadyExists("record already in graph: " +
                                 record.record_id);
  }

  // A lazily restored graph must be fully hydrated before its first
  // mutation: ingest appends into every deferred section.
  EnsureUsageLoaded();
  EnsureDerivationsLoaded();
  EnsurePostingsLoaded();
  EnsureMetaEdgesLoaded();
  EnsureTimeIndexLoaded();

  uint32_t rid = record_ids_.Intern(record.record_id);
  records_.push_back(std::move(record));
  // The moved-in record's strings stay valid inside records_; index off
  // that resting place instead of the consumed parameter.
  const ProvenanceRecord& rec = records_.back();
  meta_.emplace_back();
  RecordMeta& meta = meta_.back();
  meta.timestamp = rec.timestamp;
  meta.subject = InternEntity(rec.subject);

  meta.inputs.reserve(rec.inputs.size());
  for (const auto& in : rec.inputs) {
    uint32_t eid = InternEntity(in);
    meta.inputs.push_back(eid);
    used_by_[eid].push_back(rid);
    ++edge_count_;
  }

  // Effective outputs: if none are declared, the operation produces a new
  // logical version of the subject entity.
  if (rec.outputs.empty()) {
    meta.outputs.push_back(meta.subject);
  } else {
    meta.outputs.reserve(rec.outputs.size());
    for (const auto& out : rec.outputs) {
      meta.outputs.push_back(InternEntity(out));
    }
  }
  // wasGeneratedBy + wasDerivedFrom: each output entity.
  for (uint32_t out : meta.outputs) {
    generated_by_[out].push_back(rid);
    ++edge_count_;
    for (uint32_t in : meta.inputs) {
      if (in == out) continue;
      if (InsertSortedUnique(&derived_from_[out], in)) ++edge_count_;
      InsertSortedUnique(&derivations_[in], out);
    }
  }

  if (by_subject_[meta.subject].empty()) ++subject_count_;
  AppendByTime(&by_subject_[meta.subject], rid, &subject_dirty_[meta.subject]);
  uint32_t aid = agents_.Intern(rec.agent);
  if (aid >= by_agent_.size()) {
    by_agent_.resize(aid + 1);
    agent_dirty_.resize(aid + 1, 0);
  }
  AppendByTime(&by_agent_[aid], rid, &agent_dirty_[aid]);

  // Global time index; same append-and-mark-dirty scheme.
  std::pair<Timestamp, uint32_t> entry{rec.timestamp, rid};
  if (!by_time_.empty() && by_time_.back() > entry) time_dirty_ = 1;
  by_time_.push_back(entry);

  // wasAssociatedWith: activity -> agent.
  ++edge_count_;
  return Status::OK();
}

bool ProvenanceGraph::HasRecord(const std::string& record_id) const {
  return record_ids_.Find(record_id) != InternTable::kNone;
}

Result<ProvenanceRecord> ProvenanceGraph::GetRecord(
    const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid == InternTable::kNone) {
    return Status::NotFound("no such record: " + record_id);
  }
  return RecordAt(rid);
}

std::vector<std::string> ProvenanceGraph::EntityClosure(
    const std::vector<std::vector<uint32_t>>& adjacency,
    const std::string& start) const {
  std::vector<std::string> out;
  uint32_t s = entities_.Find(start);
  if (s == InternTable::kNone) return out;

  Bitset seen(entities_.size());
  seen.TestAndSet(s);
  // `reached` doubles as the BFS queue: ids are only appended, and `head`
  // walks it front to back.
  std::vector<uint32_t> reached;
  reached.push_back(s);
  for (size_t head = 0; head < reached.size(); ++head) {
    for (uint32_t next : adjacency[reached[head]]) {
      if (seen.TestAndSet(next)) reached.push_back(next);
    }
  }
  out.reserve(reached.size() - 1);
  for (size_t i = 1; i < reached.size(); ++i) {
    out.push_back(entities_.Name(reached[i]));
  }
  return out;
}

std::vector<std::string> ProvenanceGraph::Lineage(
    const std::string& entity) const {
  EnsureDerivationsLoaded();
  return EntityClosure(derived_from_, entity);
}

std::vector<std::string> ProvenanceGraph::Descendants(
    const std::string& entity) const {
  EnsureDerivationsLoaded();
  return EntityClosure(derivations_, entity);
}

std::vector<ProvenanceRecord> ProvenanceGraph::SubjectHistory(
    const std::string& subject) const {
  return Run(Query().WithSubject(subject)).records;
}

std::vector<ProvenanceRecord> ProvenanceGraph::ByAgent(
    const std::string& agent) const {
  return Run(Query().WithAgent(agent)).records;
}

std::vector<ProvenanceRecord> ProvenanceGraph::InRange(Timestamp from,
                                                       Timestamp to) const {
  return Run(Query().Between(from, to)).records;
}

// ---------------------------------------------------------------------------
// Composable query execution.
// ---------------------------------------------------------------------------

void ProvenanceGraph::EnsureGlobalTimeSorted() const {
  EnsureTimeIndexLoaded();
  if (!time_dirty_) return;
  // Pair order (timestamp, rid) reproduces the documented tie order: rids
  // are assigned in ingest order, so equal timestamps stay ingest-ordered.
  std::sort(by_time_.begin(), by_time_.end());
  time_dirty_ = 0;
}

std::pair<size_t, size_t> ProvenanceGraph::TimeIndexSlice(
    std::optional<Timestamp> from, std::optional<Timestamp> to) const {
  EnsureGlobalTimeSorted();
  size_t lo =
      from ? static_cast<size_t>(
                 std::lower_bound(by_time_.begin(), by_time_.end(),
                                  std::pair<Timestamp, uint32_t>{*from, 0}) -
                 by_time_.begin())
           : 0;
  size_t hi = to ? static_cast<size_t>(
                       std::upper_bound(
                           by_time_.begin(), by_time_.end(),
                           std::pair<Timestamp, uint32_t>{*to,
                                                          InternTable::kNone}) -
                       by_time_.begin())
                 : by_time_.size();
  if (hi < lo) hi = lo;
  return {lo, hi};
}

void ProvenanceGraph::NarrowByTime(const Query& query,
                                   const std::vector<uint32_t>& list,
                                   size_t* lo, size_t* hi) const {
  if (query.from) {
    *lo = std::lower_bound(list.begin(), list.end(), *query.from,
                           [this](uint32_t rid, Timestamp t) {
                             return meta_[rid].timestamp < t;
                           }) -
          list.begin();
  }
  if (query.to) {
    *hi = std::upper_bound(list.begin() + *lo, list.end(), *query.to,
                           [this](Timestamp t, uint32_t rid) {
                             return t < meta_[rid].timestamp;
                           }) -
          list.begin();
  }
  if (*hi < *lo) *hi = *lo;
}

ProvenanceGraph::QueryPlan ProvenanceGraph::PlanQuery(
    const Query& query) const {
  QueryPlan plan;
  // An impossible time range matches nothing regardless of indexes.
  if (query.from && query.to && *query.from > *query.to) return plan;

  // Candidate estimates per applicable index; a filter naming an unknown
  // key is an immediate empty result. kNone marks "not applicable".
  constexpr size_t kNotApplicable = std::numeric_limits<size_t>::max();
  size_t subject_n = kNotApplicable, agent_n = kNotApplicable;
  size_t input_n = kNotApplicable, output_n = kNotApplicable;
  size_t range_n = kNotApplicable;
  uint32_t subject_eid = InternTable::kNone, agent_aid = InternTable::kNone;
  uint32_t input_eid = InternTable::kNone, output_eid = InternTable::kNone;
  size_t range_lo = 0, range_hi = 0;

  if (query.subject) {
    EnsurePostingsLoaded();
    subject_eid = entities_.Find(*query.subject);
    if (subject_eid == InternTable::kNone) return plan;
    subject_n = by_subject_[subject_eid].size();
  }
  if (query.agent) {
    EnsurePostingsLoaded();
    agent_aid = agents_.Find(*query.agent);
    if (agent_aid == InternTable::kNone || agent_aid >= by_agent_.size()) {
      return plan;
    }
    agent_n = by_agent_[agent_aid].size();
  }
  if (query.input) {
    EnsureUsageLoaded();
    input_eid = entities_.Find(*query.input);
    if (input_eid == InternTable::kNone) return plan;
    input_n = used_by_[input_eid].size();
  }
  if (query.output) {
    EnsureUsageLoaded();
    output_eid = entities_.Find(*query.output);
    if (output_eid == InternTable::kNone) return plan;
    output_n = generated_by_[output_eid].size();
  }
  if (query.from || query.to) {
    std::tie(range_lo, range_hi) = TimeIndexSlice(query.from, query.to);
    range_n = range_hi - range_lo;
  }

  // Most selective index wins; ties break toward the cheaper scan shape
  // (postings lists are already time-sorted, input/output lists need a
  // sort, the time index needs no per-candidate key check).
  struct Option {
    QueryIndex index;
    size_t estimate;
  };
  const Option options[] = {{QueryIndex::kSubject, subject_n},
                            {QueryIndex::kAgent, agent_n},
                            {QueryIndex::kTimeRange, range_n},
                            {QueryIndex::kInput, input_n},
                            {QueryIndex::kOutput, output_n}};
  QueryIndex best = QueryIndex::kFullScan;
  size_t best_n = records_.size();
  for (const Option& option : options) {
    if (option.estimate < best_n) {
      best = option.index;
      best_n = option.estimate;
    }
  }

  plan.index = best;
  plan.estimate = best_n;
  switch (best) {
    case QueryIndex::kSubject:
      EnsureTimeSorted(&by_subject_[subject_eid], &subject_dirty_[subject_eid]);
      plan.list = &by_subject_[subject_eid];
      break;
    case QueryIndex::kAgent:
      EnsureTimeSorted(&by_agent_[agent_aid], &agent_dirty_[agent_aid]);
      plan.list = &by_agent_[agent_aid];
      break;
    case QueryIndex::kInput:
    case QueryIndex::kOutput: {
      // Usage postings are appended in ingest order with one entry per
      // mention (a record can list an entity twice); the owned copy is
      // sorted into the canonical (timestamp, rid) order and deduplicated
      // so each record appears once.
      plan.owned = best == QueryIndex::kInput ? used_by_[input_eid]
                                              : generated_by_[output_eid];
      std::sort(plan.owned.begin(), plan.owned.end(),
                [this](uint32_t a, uint32_t b) {
                  Timestamp ta = meta_[a].timestamp, tb = meta_[b].timestamp;
                  return ta != tb ? ta < tb : a < b;
                });
      plan.owned.erase(std::unique(plan.owned.begin(), plan.owned.end()),
                       plan.owned.end());
      plan.use_owned = true;
      break;
    }
    case QueryIndex::kTimeRange:
      plan.lo = range_lo;
      plan.hi = range_hi;
      break;
    case QueryIndex::kFullScan:
      EnsureGlobalTimeSorted();
      plan.hi = by_time_.size();
      break;
  }
  if (plan.use_owned || plan.list != nullptr) {
    const std::vector<uint32_t>& candidates =
        plan.use_owned ? plan.owned : *plan.list;
    plan.hi = candidates.size();
    NarrowByTime(query, candidates, &plan.lo, &plan.hi);
  }

  // Does the slice alone guarantee every filter? (Time bounds are always
  // honored: postings slices are narrowed above, and a present time range
  // beats a full scan in the selectivity contest.)
  plan.covers_filters =
      !query.subject_prefix && !query.domain && query.operations.empty() &&
      !query.invalidated && query.field_equals.empty() &&
      (!query.subject || best == QueryIndex::kSubject) &&
      (!query.agent || best == QueryIndex::kAgent) &&
      (!query.input || best == QueryIndex::kInput) &&
      (!query.output || best == QueryIndex::kOutput);
  return plan;
}

// Fan-out only pays once each worker has a few thousand candidates to
// check: below that, the queue handoff and wake-up dominate the scan.
static constexpr size_t kMinCandidatesPerWorker = 2048;

bool ProvenanceGraph::ShouldFanOut(const Query& query,
                                   const QueryPlan& plan) const {
  if (query.parallelism <= 1) return false;
  // A covering plan needs no per-candidate checks — offset/limit become
  // slice arithmetic, which no thread pool can beat.
  if (plan.covers_filters) return false;
  // Lazily-encoded snapshot records hydrate on first touch; concurrent
  // workers would race on that mutation. Warm() lifts the restriction.
  if (!record_ready_.empty()) return false;
  if (plan.size() < 2 * kMinCandidatesPerWorker) return false;
  // Parallel workers cannot stop early, so a query satisfied by a small
  // result prefix usually does better with the serial early-exit —
  // unless its page reaches deep into the candidate range anyway.
  if (!query.count_only && query.limit != Query::kNoLimit) {
    const size_t wanted = query.offset > Query::kNoLimit - query.limit
                              ? Query::kNoLimit
                              : query.offset + query.limit;
    if (wanted < plan.size() / 4) return false;
  }
  return true;
}

std::vector<uint32_t> ProvenanceGraph::ParallelMatch(
    const Query& query, const QueryPlan& plan) const {
  // Planning already hydrated and sorted everything this scan reads (the
  // chosen index, the global time index, record metadata), so the workers
  // below only perform pure reads — no locks needed.
  common::ThreadPool& pool = common::ThreadPool::Shared();
  const size_t n = plan.size();
  size_t workers = std::min(query.parallelism, pool.size() + 1);
  workers = std::min(workers, n / kMinCandidatesPerWorker);
  workers = std::max<size_t>(workers, 1);
  const size_t chunk = (n + workers - 1) / workers;

  std::vector<std::vector<uint32_t>> found(workers);
  auto scan = [&](size_t w) {
    const size_t lo = w * chunk;
    const size_t hi = std::min(n, lo + chunk);
    std::vector<uint32_t>& out = found[w];
    for (size_t i = lo; i < hi; ++i) {
      uint32_t rid = PlanRidAt(plan, i);
      if (query.Matches(RecordAt(rid), invalidations_.count(rid) > 0)) {
        out.push_back(rid);
      }
    }
  };
  common::WaitGroup wg;
  wg.Add(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    pool.Submit([&, w] {
      scan(w);
      wg.Done();
    });
  }
  scan(0);  // the calling thread pulls its weight instead of idling
  wg.Wait();

  // Chunks are contiguous plan slices, so in-order concatenation restores
  // the exact ascending (timestamp, ingest) order of the serial scan.
  size_t total = 0;
  for (const auto& f : found) total += f.size();
  std::vector<uint32_t> matches;
  matches.reserve(total);
  for (auto& f : found) {
    matches.insert(matches.end(), f.begin(), f.end());
  }
  return matches;
}

namespace {
// Visit the page [offset, offset + limit) of `matches` (ascending plan
// order) in the requested direction, calling fn(rid) until it declines.
// The one home for the descending-page index arithmetic, so the
// materializing and visitor fan-out paths can never diverge.
template <typename Fn>
void ForEachPageMatch(const std::vector<uint32_t>& matches, size_t offset,
                      size_t limit, bool descending, Fn&& fn) {
  size_t start = std::min(offset, matches.size());
  size_t take = std::min(limit, matches.size() - start);
  for (size_t i = 0; i < take; ++i) {
    size_t pos = start + i;
    if (!fn(matches[descending ? matches.size() - 1 - pos : pos])) break;
  }
}
}  // namespace

QueryResult ProvenanceGraph::Run(const Query& query) const {
  QueryResult result;
  QueryPlan plan = PlanQuery(query);
  result.index_used = plan.index;
  result.candidates_scanned = plan.size();

  if (ShouldFanOut(query, plan)) {
    std::vector<uint32_t> matches = ParallelMatch(query, plan);
    if (query.count_only) {
      result.count = matches.size();
      return result;
    }
    result.records.reserve(std::min(query.limit, matches.size()));
    ForEachPageMatch(matches, query.offset, query.limit, query.descending,
                     [&](uint32_t rid) {
                       result.records.push_back(RecordAt(rid));
                       return true;
                     });
    result.count = result.records.size();
    return result;
  }

  if (query.count_only) {
    if (plan.covers_filters) {
      result.count = plan.size();
      result.candidates_scanned = 0;  // no per-record work at all
      return result;
    }
    for (size_t i = 0; i < plan.size(); ++i) {
      uint32_t rid = PlanRidAt(plan, i);
      if (query.Matches(RecordAt(rid), invalidations_.count(rid) > 0)) {
        ++result.count;
      }
    }
    return result;
  }

  if (plan.covers_filters) {
    // Every candidate is a match, so offset/limit become slice arithmetic
    // and no per-record predicate or invalidation lookup runs — the legacy
    // wrappers (SubjectHistory/ByAgent/InRange) stay pure materialization.
    size_t start = std::min(query.offset, plan.size());
    size_t take = std::min(query.limit, plan.size() - start);
    result.records.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      size_t pos = start + i;
      result.records.push_back(RecordAt(PlanRidAt(
          plan, query.descending ? plan.size() - 1 - pos : pos)));
    }
    result.count = take;
    return result;
  }

  size_t skipped = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    uint32_t rid = PlanRidAt(plan, query.descending ? plan.size() - 1 - i : i);
    if (!query.Matches(RecordAt(rid), invalidations_.count(rid) > 0)) continue;
    if (skipped < query.offset) {
      ++skipped;
      continue;
    }
    if (result.records.size() >= query.limit) break;
    result.records.push_back(RecordAt(rid));
  }
  result.count = result.records.size();
  return result;
}

QueryExplain ProvenanceGraph::Explain(const Query& query) const {
  QueryExplain out;
  const auto plan_start = std::chrono::steady_clock::now();
  QueryPlan plan = PlanQuery(query);
  const auto plan_end = std::chrono::steady_clock::now();
  out.index_used = plan.index;
  out.estimated_candidates = plan.estimate;
  out.covers_filters = plan.covers_filters;
  out.plan_seconds =
      std::chrono::duration<double>(plan_end - plan_start).count();
  if (plan.covers_filters) {
    // Same short-circuit a count-only execution takes: the slice IS the
    // answer, no candidate is ever visited.
    out.rows_matched = plan.size();
    return out;
  }
  out.candidates_scanned = plan.size();
  for (size_t i = 0; i < plan.size(); ++i) {
    uint32_t rid = PlanRidAt(plan, i);
    if (query.Matches(RecordAt(rid), invalidations_.count(rid) > 0)) {
      ++out.rows_matched;
    }
  }
  out.scan_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - plan_end)
                         .count();
  return out;
}

size_t ProvenanceGraph::Run(
    const Query& query,
    const std::function<bool(const ProvenanceRecord&)>& visit) const {
  QueryPlan plan = PlanQuery(query);

  if (ShouldFanOut(query, plan)) {
    // Predicate checks fan out; the visitor itself stays on the calling
    // thread, in order — callers never need a thread-safe visitor.
    std::vector<uint32_t> matches = ParallelMatch(query, plan);
    size_t visited = 0;
    ForEachPageMatch(matches, query.offset, query.limit, query.descending,
                     [&](uint32_t rid) {
                       ++visited;
                       return visit(RecordAt(rid));
                     });
    return visited;
  }

  if (plan.covers_filters) {
    size_t start = std::min(query.offset, plan.size());
    size_t take = std::min(query.limit, plan.size() - start);
    size_t visited = 0;
    for (size_t i = 0; i < take; ++i) {
      size_t pos = start + i;
      ++visited;
      if (!visit(RecordAt(PlanRidAt(
              plan, query.descending ? plan.size() - 1 - pos : pos)))) {
        break;
      }
    }
    return visited;
  }

  size_t skipped = 0, visited = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    uint32_t rid = PlanRidAt(plan, query.descending ? plan.size() - 1 - i : i);
    if (!query.Matches(RecordAt(rid), invalidations_.count(rid) > 0)) continue;
    if (skipped < query.offset) {
      ++skipped;
      continue;
    }
    if (visited >= query.limit) break;
    ++visited;
    if (!visit(RecordAt(rid))) break;
  }
  return visited;
}

// ---------------------------------------------------------------------------
// Planner cardinality accessors.
// ---------------------------------------------------------------------------

size_t ProvenanceGraph::SubjectRecordCount(const std::string& subject) const {
  EnsurePostingsLoaded();
  uint32_t eid = entities_.Find(subject);
  return eid == InternTable::kNone ? 0 : by_subject_[eid].size();
}

size_t ProvenanceGraph::AgentRecordCount(const std::string& agent) const {
  EnsurePostingsLoaded();
  uint32_t aid = agents_.Find(agent);
  return aid == InternTable::kNone || aid >= by_agent_.size()
             ? 0
             : by_agent_[aid].size();
}

size_t ProvenanceGraph::EntityUseCount(const std::string& entity) const {
  EnsureUsageLoaded();
  uint32_t eid = entities_.Find(entity);
  return eid == InternTable::kNone ? 0 : used_by_[eid].size();
}

size_t ProvenanceGraph::EntityGenerationCount(
    const std::string& entity) const {
  EnsureUsageLoaded();
  uint32_t eid = entities_.Find(entity);
  return eid == InternTable::kNone ? 0 : generated_by_[eid].size();
}

size_t ProvenanceGraph::InRangeCount(Timestamp from, Timestamp to) const {
  if (from > to) return 0;
  auto [lo, hi] = TimeIndexSlice(from, to);
  return hi - lo;
}

void ProvenanceGraph::AppendDownstream(uint32_t rid, Bitset* seen,
                                       std::vector<uint32_t>* out) const {
  for (uint32_t eid : meta_[rid].outputs) {
    for (uint32_t consumer : used_by_[eid]) {
      if (consumer != rid && seen->TestAndSet(consumer)) {
        out->push_back(consumer);
      }
    }
  }
}

std::vector<uint32_t> ProvenanceGraph::DownstreamClosure(uint32_t rid) const {
  EnsureUsageLoaded();      // used_by_ drives the BFS
  EnsureMetaEdgesLoaded();  // AppendDownstream walks meta outputs
  // BFS over the consumption graph: every record that used (transitively)
  // this record's outputs (SciBlock semantics).
  Bitset seen(records_.size());
  seen.TestAndSet(rid);
  std::vector<uint32_t> reached;
  AppendDownstream(rid, &seen, &reached);
  for (size_t head = 0; head < reached.size(); ++head) {
    AppendDownstream(reached[head], &seen, &reached);
  }
  return reached;
}

Result<std::vector<std::string>> ProvenanceGraph::Invalidate(
    const std::string& record_id, Timestamp at, const std::string& reason) {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid == InternTable::kNone) {
    return Status::NotFound("no such record: " + record_id);
  }
  if (invalidations_.count(rid)) {
    return Status::AlreadyExists("record already invalidated: " + record_id);
  }

  std::vector<uint32_t> cascade = DownstreamClosure(rid);
  std::vector<std::string> order;
  order.reserve(cascade.size() + 1);
  order.push_back(record_id);
  for (uint32_t id : cascade) order.push_back(record_ids_.Name(id));

  for (uint32_t id : cascade) {
    if (invalidations_.count(id)) continue;  // already invalid from earlier
    Invalidation inv;
    inv.record_id = record_ids_.Name(id);
    inv.at = at;
    inv.reason = reason;
    inv.cascaded = true;
    invalidations_.emplace(id, std::move(inv));
  }
  Invalidation root;
  root.record_id = record_id;
  root.at = at;
  root.reason = reason;
  root.cascaded = false;
  invalidations_.emplace(rid, std::move(root));
  return order;
}

bool ProvenanceGraph::IsInvalidated(const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  return rid != InternTable::kNone && invalidations_.count(rid) > 0;
}

Result<Invalidation> ProvenanceGraph::GetInvalidation(
    const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid != InternTable::kNone) {
    auto it = invalidations_.find(rid);
    if (it != invalidations_.end()) {
      Invalidation inv = it->second;
      // Snapshot-loaded entries carry no record_id string (lazy names).
      if (inv.record_id.empty()) inv.record_id = record_ids_.Name(rid);
      return inv;
    }
  }
  return Status::NotFound("record not invalidated: " + record_id);
}

// ---------------------------------------------------------------------------
// Snapshot serialization.
// ---------------------------------------------------------------------------

namespace {

/// Reads a u32 vector in one bulk step, rejecting ids outside
/// [0, id_limit). GetU32Array validates the byte length against the buffer
/// before allocating, so the length cap can stay open-ended.
Status GetU32Vec(Decoder* dec, std::vector<uint32_t>* v, uint32_t id_limit) {
  PROVLEDGER_RETURN_NOT_OK(
      dec->GetU32Array(v, std::numeric_limits<uint32_t>::max()));
  for (uint32_t x : *v) {
    if (x >= id_limit) {
      return Status::Corruption("graph snapshot id out of range");
    }
  }
  return Status::OK();
}

void PutVecOfU32Vec(Encoder* enc,
                    const std::vector<std::vector<uint32_t>>& vv) {
  enc->PutU32(static_cast<uint32_t>(vv.size()));
  for (const auto& v : vv) enc->PutU32Array(v);
}

Status GetVecOfU32Vec(Decoder* dec, std::vector<std::vector<uint32_t>>* vv,
                      uint32_t expected_size, uint32_t id_limit) {
  uint32_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
  if (n != expected_size) {
    return Status::Corruption("graph snapshot adjacency size mismatch");
  }
  vv->assign(n, {});
  for (auto& v : *vv) PROVLEDGER_RETURN_NOT_OK(GetU32Vec(dec, &v, id_limit));
  return Status::OK();
}

}  // namespace

void ProvenanceGraph::MaterializeRecord(uint32_t rid) const {
  Decoder dec(lazy_records_.data() + lazy_record_offsets_[rid],
              lazy_record_offsets_[rid + 1] - lazy_record_offsets_[rid]);
  auto rec = ProvenanceRecord::DecodeFrom(&dec);
  if (rec.ok()) records_[rid] = std::move(rec).value();
  // Mark even on failure (offsets were validated at load, so failure is a
  // bug, not data): an empty record beats an infinite retry loop.
  record_ready_[rid] = 1;
}

void ProvenanceGraph::Hydrate(LazySlice* slice,
                              const std::function<Status(Decoder*)>& load) {
  if (slice->empty()) return;
  // Detach first so a re-entrant Ensure* during `load` no-ops.
  LazySlice pinned = std::move(*slice);
  slice->clear();
  Decoder dec(pinned.data(), pinned.length);
  Status hydrated = load(&dec);
  // The section sat under the snapshot's load-time checksum and its ids
  // were bounded at write time, so failure here is a bug; the section
  // stays empty then.
  assert(hydrated.ok());
  (void)hydrated;
}

void ProvenanceGraph::EnsureUsageLoaded() const {
  Hydrate(&lazy_usage_, [this](Decoder* dec) -> Status {
    const uint32_t ne = static_cast<uint32_t>(entities_.size());
    const uint32_t nr = static_cast<uint32_t>(records_.size());
    PROVLEDGER_RETURN_NOT_OK(GetVecOfU32Vec(dec, &generated_by_, ne, nr));
    PROVLEDGER_RETURN_NOT_OK(GetVecOfU32Vec(dec, &used_by_, ne, nr));
    if (!dec->AtEnd()) return Status::Corruption("trailing usage bytes");
    return Status::OK();
  });
}

void ProvenanceGraph::EnsureDerivationsLoaded() const {
  Hydrate(&lazy_derived_, [this](Decoder* dec) -> Status {
    const uint32_t ne = static_cast<uint32_t>(entities_.size());
    PROVLEDGER_RETURN_NOT_OK(GetVecOfU32Vec(dec, &derived_from_, ne, ne));
    PROVLEDGER_RETURN_NOT_OK(GetVecOfU32Vec(dec, &derivations_, ne, ne));
    if (!dec->AtEnd()) return Status::Corruption("trailing derivation bytes");
    return Status::OK();
  });
}

void ProvenanceGraph::EnsurePostingsLoaded() const {
  Hydrate(&lazy_postings_, [this](Decoder* dec) -> Status {
    const uint32_t ne = static_cast<uint32_t>(entities_.size());
    const uint32_t na = static_cast<uint32_t>(agents_.size());
    const uint32_t nr = static_cast<uint32_t>(records_.size());
    PROVLEDGER_RETURN_NOT_OK(GetVecOfU32Vec(dec, &by_subject_, ne, nr));
    PROVLEDGER_RETURN_NOT_OK(GetVecOfU32Vec(dec, &by_agent_, na, nr));
    // Saved postings are canonically sorted, so every list starts clean.
    subject_dirty_.assign(ne, 0);
    agent_dirty_.assign(na, 0);
    if (!dec->AtEnd()) return Status::Corruption("trailing postings bytes");
    return Status::OK();
  });
}

void ProvenanceGraph::EnsureMetaEdgesLoaded() const {
  Hydrate(&lazy_meta_edges_, [this](Decoder* dec) -> Status {
    const uint32_t ne = static_cast<uint32_t>(entities_.size());
    for (size_t i = 0; i < lazy_loaded_records_; ++i) {
      PROVLEDGER_RETURN_NOT_OK(GetU32Vec(dec, &meta_[i].inputs, ne));
      PROVLEDGER_RETURN_NOT_OK(GetU32Vec(dec, &meta_[i].outputs, ne));
    }
    if (!dec->AtEnd()) return Status::Corruption("trailing meta-edge bytes");
    return Status::OK();
  });
}

void ProvenanceGraph::EnsureTimeIndexLoaded() const {
  Hydrate(&lazy_time_index_, [this](Decoder* dec) -> Status {
    const uint32_t nr = static_cast<uint32_t>(records_.size());
    uint32_t n = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
    if (n != lazy_loaded_records_) {
      return Status::Corruption("time index size mismatch");
    }
    by_time_.resize(n);
    for (auto& [ts, rid] : by_time_) {
      PROVLEDGER_RETURN_NOT_OK(dec->GetI64(&ts));
      PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&rid));
      if (rid >= nr) {
        return Status::Corruption("time index rid out of range");
      }
    }
    time_dirty_ = 0;  // saved sorted
    if (!dec->AtEnd()) return Status::Corruption("trailing time-index bytes");
    return Status::OK();
  });
}

void ProvenanceGraph::SaveTo(Encoder* enc) const {
  // Postings are saved in canonical (timestamp, rid) order so LoadFrom can
  // clear every dirty flag; paying any deferred sorts now keeps the load
  // path sort-free. Sections still sitting in raw snapshot form are
  // untouched since their own load and already canonical.
  if (lazy_postings_.empty()) {
    for (size_t eid = 0; eid < by_subject_.size(); ++eid) {
      EnsureTimeSorted(&by_subject_[eid], &subject_dirty_[eid]);
    }
    for (size_t aid = 0; aid < by_agent_.size(); ++aid) {
      EnsureTimeSorted(&by_agent_[aid], &agent_dirty_[aid]);
    }
  }

  // One length-prefixed section each for the deferred structure groups:
  // raw passthrough when this graph itself still holds the section lazily
  // (any mutation hydrates everything first, so raw implies unchanged).
  auto save_section = [enc](const LazySlice& raw,
                            const std::function<void(Encoder*)>& write) {
    if (!raw.empty()) {
      enc->PutU32(static_cast<uint32_t>(raw.length));
      enc->PutRaw(raw.data(), raw.length);
      return;
    }
    Encoder section;
    write(&section);
    enc->PutU32(static_cast<uint32_t>(section.size()));
    enc->PutRaw(section.buffer());
  };

  record_ids_.SaveTo(enc);
  entities_.SaveTo(enc);
  agents_.SaveTo(enc);

  // Records travel as one blob plus an offset table (n + 1 entries, last =
  // blob size) so LoadFrom can keep them lazily encoded. Records still
  // sitting un-materialized in this graph's own lazy blob are copied as
  // bytes — snapshotting a snapshot-restored store never decodes them.
  enc->PutU32(static_cast<uint32_t>(records_.size()));
  Encoder blob;
  std::vector<uint32_t> offsets;
  offsets.reserve(records_.size() + 1);
  for (uint32_t rid = 0; rid < records_.size(); ++rid) {
    offsets.push_back(static_cast<uint32_t>(blob.size()));
    if (rid < record_ready_.size() && !record_ready_[rid]) {
      blob.PutRaw(lazy_records_.data() + lazy_record_offsets_[rid],
                  lazy_record_offsets_[rid + 1] - lazy_record_offsets_[rid]);
    } else {
      records_[rid].EncodeTo(&blob);
    }
  }
  offsets.push_back(static_cast<uint32_t>(blob.size()));
  enc->PutU32Array(offsets);
  enc->PutU32(static_cast<uint32_t>(blob.size()));
  enc->PutRaw(blob.buffer());

  // Planner-critical meta scalars load eagerly, so they are flat arrays.
  std::vector<uint32_t> subjects;
  subjects.reserve(meta_.size());
  for (const auto& meta : meta_) subjects.push_back(meta.subject);
  enc->PutU32Array(subjects);
  for (const auto& meta : meta_) enc->PutI64(meta.timestamp);

  save_section(lazy_usage_, [this](Encoder* s) {
    PutVecOfU32Vec(s, generated_by_);
    PutVecOfU32Vec(s, used_by_);
  });
  save_section(lazy_derived_, [this](Encoder* s) {
    PutVecOfU32Vec(s, derived_from_);
    PutVecOfU32Vec(s, derivations_);
  });
  save_section(lazy_postings_, [this](Encoder* s) {
    PutVecOfU32Vec(s, by_subject_);
    PutVecOfU32Vec(s, by_agent_);
  });
  save_section(lazy_meta_edges_, [this](Encoder* s) {
    for (const auto& meta : meta_) {
      s->PutU32Array(meta.inputs);
      s->PutU32Array(meta.outputs);
    }
  });
  if (lazy_time_index_.empty()) EnsureGlobalTimeSorted();
  save_section(lazy_time_index_, [this](Encoder* s) {
    s->PutU32(static_cast<uint32_t>(by_time_.size()));
    for (const auto& [ts, rid] : by_time_) {
      s->PutI64(ts);
      s->PutU32(rid);
    }
  });

  enc->PutU32(static_cast<uint32_t>(invalidations_.size()));
  for (const auto& [rid, inv] : invalidations_) {
    enc->PutU32(rid);
    enc->PutI64(inv.at);
    enc->PutString(inv.reason);
    enc->PutBool(inv.cascaded);
  }

  enc->PutU64(edge_count_);
  enc->PutU64(subject_count_);
}

Status ProvenanceGraph::LoadFrom(
    Decoder* dec, const std::shared_ptr<const Bytes>& backing) {
  *this = ProvenanceGraph();
  Status loaded = [&]() -> Status {
    PROVLEDGER_RETURN_NOT_OK(record_ids_.LoadFrom(dec, backing));
    PROVLEDGER_RETURN_NOT_OK(entities_.LoadFrom(dec, backing));
    PROVLEDGER_RETURN_NOT_OK(agents_.LoadFrom(dec, backing));
    const uint32_t n_records = static_cast<uint32_t>(record_ids_.size());
    const uint32_t n_entities = static_cast<uint32_t>(entities_.size());

    uint32_t n = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
    if (n != n_records) {
      return Status::Corruption("graph snapshot record count mismatch");
    }
    // Records stay encoded: validate the offset table now (monotone, ends
    // at the blob size) so lazy materialization can slice blindly later.
    PROVLEDGER_RETURN_NOT_OK(dec->GetU32Array(&lazy_record_offsets_, n + 1));
    if (lazy_record_offsets_.size() != n + 1 ||
        (n > 0 && lazy_record_offsets_[0] != 0)) {
      return Status::Corruption("graph snapshot record offsets malformed");
    }
    for (uint32_t i = 1; i <= n; ++i) {
      if (lazy_record_offsets_[i] < lazy_record_offsets_[i - 1]) {
        return Status::Corruption("graph snapshot record offsets unsorted");
      }
    }
    PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_records_));
    if (lazy_record_offsets_[n] != lazy_records_.length) {
      return Status::Corruption("graph snapshot record blob size mismatch");
    }
    records_.resize(n);
    record_ready_.assign(n, 0);

    // Meta scalars load eagerly (the planner's time narrowing reads them);
    // the structure sections below stay zero-copy slices until first touch.
    std::vector<uint32_t> subjects;
    PROVLEDGER_RETURN_NOT_OK(GetU32Vec(dec, &subjects, n_entities));
    if (subjects.size() != n) {
      return Status::Corruption("graph snapshot meta subject count mismatch");
    }
    meta_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      meta_[i].subject = subjects[i];
      PROVLEDGER_RETURN_NOT_OK(dec->GetI64(&meta_[i].timestamp));
    }
    lazy_loaded_records_ = n;

    PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_usage_));
    PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_derived_));
    PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_postings_));
    PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_meta_edges_));
    PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_time_index_));
    time_dirty_ = 0;  // the deferred time index was saved sorted

    PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&n));
    invalidations_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t rid = 0;
      Invalidation inv;
      PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&rid));
      if (rid >= n_records) {
        return Status::Corruption("graph snapshot invalidation out of range");
      }
      PROVLEDGER_RETURN_NOT_OK(dec->GetI64(&inv.at));
      PROVLEDGER_RETURN_NOT_OK(dec->GetString(&inv.reason));
      PROVLEDGER_RETURN_NOT_OK(dec->GetBool(&inv.cascaded));
      // record_id is left empty here — GetInvalidation fills it from the
      // rid on demand, so loading invalidations does not force the whole
      // record-id intern table to hydrate.
      invalidations_.emplace(rid, std::move(inv));
    }

    uint64_t v = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetU64(&v));
    edge_count_ = static_cast<size_t>(v);
    PROVLEDGER_RETURN_NOT_OK(dec->GetU64(&v));
    subject_count_ = static_cast<size_t>(v);
    return Status::OK();
  }();
  if (!loaded.ok()) *this = ProvenanceGraph();
  return loaded;
}

void ProvenanceGraph::Warm() {
  // Hydrate every deferred snapshot section.
  EnsureUsageLoaded();
  EnsureDerivationsLoaded();
  EnsurePostingsLoaded();
  EnsureMetaEdgesLoaded();
  EnsureTimeIndexLoaded();

  // Pay every pending sort now so no const query path re-sorts later.
  for (size_t eid = 0; eid < by_subject_.size(); ++eid) {
    EnsureTimeSorted(&by_subject_[eid], &subject_dirty_[eid]);
  }
  for (size_t aid = 0; aid < by_agent_.size(); ++aid) {
    EnsureTimeSorted(&by_agent_[aid], &agent_dirty_[aid]);
  }
  EnsureGlobalTimeSorted();

  // Decode every lazily-encoded record, then drop the lazy window so
  // RecordAt becomes a plain vector read.
  for (uint32_t rid = 0; rid < record_ready_.size(); ++rid) {
    if (!record_ready_[rid]) MaterializeRecord(rid);
  }
  record_ready_.clear();
  lazy_records_.clear();
  lazy_record_offsets_.clear();

  // Intern tables: names and reverse maps.
  record_ids_.Warm();
  entities_.Warm();
  agents_.Warm();
}

std::vector<std::string> ProvenanceGraph::ReexecutionSet(
    const std::string& record_id) const {
  uint32_t rid = record_ids_.Find(record_id);
  if (rid == InternTable::kNone) return {};
  // Downstream closure over the consumption graph: exactly the activities
  // that must re-run once `record_id` is invalidated and repaired.
  std::vector<uint32_t> cascade = DownstreamClosure(rid);
  std::vector<std::string> out;
  out.reserve(cascade.size());
  for (uint32_t id : cascade) out.push_back(record_ids_.Name(id));
  return out;
}

}  // namespace prov
}  // namespace provledger
