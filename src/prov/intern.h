// String interning for the provenance graph's hot path.
//
// Query latency over large provenance DAGs is dominated by string keys:
// every map lookup re-hashes (or re-compares) entity/agent/record ids, and
// every BFS visited-set insert copies a std::string. InternTable maps each
// distinct id to a dense uint32_t once at ingest time, so the graph engine
// can store adjacency as integer vectors and run traversals over bitsets.
//
// Ids are assigned contiguously from 0 in first-seen order, which makes
// them directly usable as vector indexes (CSR-style adjacency) and bitset
// positions.
//
// Thread safety: NOT internally synchronized. Intern() mutates; const
// lookups hydrate lazy state on first use. After Warm() — and with no
// further Intern() — const reads are safe from many threads.

#ifndef PROVLEDGER_PROV_INTERN_H_
#define PROVLEDGER_PROV_INTERN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "prov/lazy_slice.h"

namespace provledger {
namespace prov {

/// \brief Bidirectional string <-> dense-id table.
class InternTable {
 public:
  /// Sentinel returned by Find() for unknown strings.
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  /// Id for `s`, interning it if new. Ids are dense: the first distinct
  /// string gets 0, the next 1, and so on.
  uint32_t Intern(const std::string& s);

  /// Id for `s`, or kNone if it was never interned.
  uint32_t Find(const std::string& s) const;

  /// The string for a previously returned id. The reference is invalidated
  /// by the next Intern() call.
  const std::string& Name(uint32_t id) const {
    EnsureNames();
    return names_[id];
  }

  /// Number of distinct strings interned.
  size_t size() const {
    return lazy_names_.empty() ? names_.size() : lazy_count_;
  }

  /// \brief Force both deferred structures (name vector, reverse hash
  /// map) to materialize now. After Warm() — and with no Intern() calls
  /// afterwards — every const method is a pure read and safe to call from
  /// many threads concurrently.
  void Warm() const {
    EnsureNames();
    EnsureMap();
  }

  /// \name Snapshot serialization (graph persistence).
  /// Ids are dense and first-seen ordered, so the name vector alone is the
  /// whole table, written as one `[u32 len][u32 count][strings]` section.
  /// LoadFrom keeps the section as a zero-copy slice: the name vector
  /// materializes on the first Name() / Find() / Intern(), and the reverse
  /// hash map on the first Find()/Intern() — a restored store that never
  /// looks a string up pays for neither.
  /// @{
  void SaveTo(Encoder* enc) const;
  Status LoadFrom(Decoder* dec, const std::shared_ptr<const Bytes>& backing);
  /// @}

 private:
  /// Decode names_ from the deferred slice. Runs under the snapshot's
  /// load-time checksum, so failure is a bug; names load empty then.
  void EnsureNames() const;
  /// Build ids_ from names_ if a snapshot load deferred it.
  void EnsureMap() const;

  mutable std::unordered_map<std::string, uint32_t> ids_;
  mutable bool map_ready_ = true;
  mutable std::vector<std::string> names_;
  mutable LazySlice lazy_names_;
  size_t lazy_count_ = 0;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_INTERN_H_
