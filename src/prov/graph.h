// The provenance graph: a PROV-DM-style DAG (entities, activities, agents;
// used / wasGeneratedBy / wasDerivedFrom / wasAssociatedWith edges) built
// from anchored records, with the query and invalidation machinery the
// paper's §6.1 "Provenance Query" axis calls for:
//
//   * lineage (ancestor entities) and descendants,
//   * per-agent, per-subject, and time-range queries,
//   * SciBlock-style timestamp invalidation with downstream cascade
//     (the Figure 4 lifecycle's "invalidate + selective re-execution").
//
// Engine layout (dense-id rewrite): every entity, agent, and record id is
// interned to a contiguous uint32_t on ingest (see prov/intern.h). All
// adjacency is stored as per-id vectors of ids — derivation edges as
// sorted, deduplicated vectors (CSR-style), subject/agent postings lists
// insertion-sorted by timestamp so history queries need no per-call sort,
// plus a global (timestamp, record) index that makes InRange O(log n + k).
// Traversals (Lineage / Descendants / Invalidate / ReexecutionSet) run BFS
// over integer adjacency with bitset visited-sets; strings are only touched
// when materializing results. The public API is unchanged and string-based.

#ifndef PROVLEDGER_PROV_GRAPH_H_
#define PROVLEDGER_PROV_GRAPH_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prov/intern.h"
#include "prov/record.h"

namespace provledger {
namespace prov {

/// \brief PROV-DM node kinds.
enum class NodeKind : uint8_t { kEntity = 0, kActivity = 1, kAgent = 2 };

/// \brief PROV-DM relation kinds (activity-centric subset).
enum class RelationKind : uint8_t {
  kUsed = 0,              // activity  -> entity (input)
  kWasGeneratedBy = 1,    // entity    -> activity
  kWasDerivedFrom = 2,    // entity    -> entity
  kWasAssociatedWith = 3  // activity  -> agent
};

/// \brief An invalidation mark on a record (SciBlock's timestamp-based
/// invalidation: later consumers of the outputs become invalid too).
struct Invalidation {
  std::string record_id;
  Timestamp at = 0;
  std::string reason;
  /// True when this record was invalidated transitively via a cascade.
  bool cascaded = false;
};

/// \brief In-memory provenance DAG over anchored records.
///
/// Thread safety: NOT internally synchronized. Const query methods may
/// lazily re-sort internal time indexes (mutable state), so even
/// concurrent read-only use requires external synchronization.
class ProvenanceGraph {
 public:
  /// Ingest a (validated) record, creating entity/activity/agent nodes and
  /// PROV edges. Records must have unique ids.
  Status AddRecord(const ProvenanceRecord& record);

  bool HasRecord(const std::string& record_id) const;
  Result<ProvenanceRecord> GetRecord(const std::string& record_id) const;
  size_t record_count() const { return records_.size(); }
  size_t entity_count() const { return entities_.size(); }
  /// Distinct PROV edges: used + wasGeneratedBy + wasAssociatedWith per
  /// record, plus *deduplicated* derivation pairs — a derivation asserted
  /// by several records counts once (the pre-rewrite engine counted each
  /// assertion).
  size_t edge_count() const { return edge_count_; }

  /// \name Queries (§6.1 "Provenance Query").
  /// @{
  /// All ancestor entities `entity` transitively derives from.
  std::vector<std::string> Lineage(const std::string& entity) const;
  /// All entities transitively derived from `entity`.
  std::vector<std::string> Descendants(const std::string& entity) const;
  /// Records touching `subject`, in timestamp order.
  std::vector<ProvenanceRecord> SubjectHistory(
      const std::string& subject) const;
  /// Records performed by `agent`, in timestamp order.
  std::vector<ProvenanceRecord> ByAgent(const std::string& agent) const;
  /// Records with timestamp in [from, to], in timestamp order (ties in
  /// ingest order).
  std::vector<ProvenanceRecord> InRange(Timestamp from, Timestamp to) const;
  /// @}

  /// \name Invalidation (SciBlock / Figure 4).
  /// @{
  /// Invalidate a record; every record that transitively used its outputs
  /// is cascade-invalidated. Returns the ids invalidated (including the
  /// root), in cascade order.
  Result<std::vector<std::string>> Invalidate(const std::string& record_id,
                                              Timestamp at,
                                              const std::string& reason);
  bool IsInvalidated(const std::string& record_id) const;
  Result<Invalidation> GetInvalidation(const std::string& record_id) const;
  size_t invalidated_count() const { return invalidations_.size(); }
  /// Records that would be re-executed to repair the graph after the given
  /// record's invalidation (= the cascade set minus the root).
  std::vector<std::string> ReexecutionSet(const std::string& record_id) const;
  /// @}

 private:
  /// Per-record dense metadata mirrored off the full ProvenanceRecord so
  /// traversals never touch strings.
  struct RecordMeta {
    uint32_t subject = 0;
    Timestamp timestamp = 0;
    std::vector<uint32_t> inputs;
    /// Effective outputs (the subject when none are declared).
    std::vector<uint32_t> outputs;
  };

  /// Word-granular visited bitset sized for `n` ids.
  class Bitset {
   public:
    explicit Bitset(size_t n) : words_((n + 63) / 64, 0) {}
    /// Marks `id`; true when it was not yet set.
    bool TestAndSet(uint32_t id) {
      uint64_t& w = words_[id >> 6];
      uint64_t bit = uint64_t{1} << (id & 63);
      if (w & bit) return false;
      w |= bit;
      return true;
    }

   private:
    std::vector<uint64_t> words_;
  };

  uint32_t InternEntity(const std::string& entity);
  /// Direct downstream consumers of `rid`'s outputs, appended to `out`
  /// (deduplicated via `seen`).
  void AppendDownstream(uint32_t rid, Bitset* seen,
                        std::vector<uint32_t>* out) const;
  /// BFS closure of records downstream of `rid` (excluding `rid`), in
  /// cascade order — shared by Invalidate and ReexecutionSet so their
  /// orders always agree.
  std::vector<uint32_t> DownstreamClosure(uint32_t rid) const;
  std::vector<std::string> EntityClosure(
      const std::vector<std::vector<uint32_t>>& adjacency,
      const std::string& start) const;
  /// Append `rid` to a postings list kept in (timestamp, ingest) order;
  /// an out-of-order timestamp just flags the list dirty so ingest stays
  /// O(1) and the sort is paid once, on the next query of that list.
  void AppendByTime(std::vector<uint32_t>* postings, uint32_t rid,
                    uint8_t* dirty);
  /// Sort-on-demand counterpart of AppendByTime.
  void EnsureTimeSorted(std::vector<uint32_t>* postings,
                        uint8_t* dirty) const;
  std::vector<ProvenanceRecord> MaterializeRecords(
      const std::vector<uint32_t>& rids) const;

  InternTable record_ids_;
  InternTable entities_;
  InternTable agents_;
  /// Full records by dense record id (ingest order).
  std::vector<ProvenanceRecord> records_;
  std::vector<RecordMeta> meta_;

  // Per-entity adjacency, indexed by entity id.
  std::vector<std::vector<uint32_t>> generated_by_;  // record ids
  std::vector<std::vector<uint32_t>> used_by_;       // record ids
  std::vector<std::vector<uint32_t>> derived_from_;  // entity ids, sorted
  std::vector<std::vector<uint32_t>> derivations_;   // entity ids, sorted

  // Time-ordered postings (subject / agent / global). Lists touched by an
  // out-of-order ingest carry a dirty flag and are re-sorted lazily on
  // query, hence mutable.
  mutable std::vector<std::vector<uint32_t>> by_subject_;
  mutable std::vector<uint8_t> subject_dirty_;
  mutable std::vector<std::vector<uint32_t>> by_agent_;
  mutable std::vector<uint8_t> agent_dirty_;
  // Global (timestamp, record id) index, sorted.
  mutable std::vector<std::pair<Timestamp, uint32_t>> by_time_;
  mutable uint8_t time_dirty_ = 0;

  std::unordered_map<uint32_t, Invalidation> invalidations_;
  size_t edge_count_ = 0;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_GRAPH_H_
