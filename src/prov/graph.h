// The provenance graph: a PROV-DM-style DAG (entities, activities, agents;
// used / wasGeneratedBy / wasDerivedFrom / wasAssociatedWith edges) built
// from anchored records, with the query and invalidation machinery the
// paper's §6.1 "Provenance Query" axis calls for:
//
//   * lineage (ancestor entities) and descendants,
//   * per-agent, per-subject, and time-range queries,
//   * SciBlock-style timestamp invalidation with downstream cascade
//     (the Figure 4 lifecycle's "invalidate + selective re-execution").

#ifndef PROVLEDGER_PROV_GRAPH_H_
#define PROVLEDGER_PROV_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "prov/record.h"

namespace provledger {
namespace prov {

/// \brief PROV-DM node kinds.
enum class NodeKind : uint8_t { kEntity = 0, kActivity = 1, kAgent = 2 };

/// \brief PROV-DM relation kinds (activity-centric subset).
enum class RelationKind : uint8_t {
  kUsed = 0,              // activity  -> entity (input)
  kWasGeneratedBy = 1,    // entity    -> activity
  kWasDerivedFrom = 2,    // entity    -> entity
  kWasAssociatedWith = 3  // activity  -> agent
};

/// \brief An invalidation mark on a record (SciBlock's timestamp-based
/// invalidation: later consumers of the outputs become invalid too).
struct Invalidation {
  std::string record_id;
  Timestamp at = 0;
  std::string reason;
  /// True when this record was invalidated transitively via a cascade.
  bool cascaded = false;
};

/// \brief In-memory provenance DAG over anchored records.
class ProvenanceGraph {
 public:
  /// Ingest a (validated) record, creating entity/activity/agent nodes and
  /// PROV edges. Records must have unique ids.
  Status AddRecord(const ProvenanceRecord& record);

  bool HasRecord(const std::string& record_id) const;
  Result<ProvenanceRecord> GetRecord(const std::string& record_id) const;
  size_t record_count() const { return records_.size(); }
  size_t entity_count() const { return entity_versions_.size(); }
  size_t edge_count() const { return edge_count_; }

  /// \name Queries (§6.1 "Provenance Query").
  /// @{
  /// All ancestor entities `entity` transitively derives from.
  std::vector<std::string> Lineage(const std::string& entity) const;
  /// All entities transitively derived from `entity`.
  std::vector<std::string> Descendants(const std::string& entity) const;
  /// Records touching `subject`, in timestamp order.
  std::vector<ProvenanceRecord> SubjectHistory(
      const std::string& subject) const;
  /// Records performed by `agent`, in timestamp order.
  std::vector<ProvenanceRecord> ByAgent(const std::string& agent) const;
  /// Records with timestamp in [from, to], in timestamp order.
  std::vector<ProvenanceRecord> InRange(Timestamp from, Timestamp to) const;
  /// @}

  /// \name Invalidation (SciBlock / Figure 4).
  /// @{
  /// Invalidate a record; every record that transitively used its outputs
  /// is cascade-invalidated. Returns the ids invalidated (including the
  /// root), in cascade order.
  Result<std::vector<std::string>> Invalidate(const std::string& record_id,
                                              Timestamp at,
                                              const std::string& reason);
  bool IsInvalidated(const std::string& record_id) const;
  Result<Invalidation> GetInvalidation(const std::string& record_id) const;
  size_t invalidated_count() const { return invalidations_.size(); }
  /// Records that would be re-executed to repair the graph after the given
  /// record's invalidation (= the cascade set minus the root).
  std::vector<std::string> ReexecutionSet(const std::string& record_id) const;
  /// @}

 private:
  // Downstream records: record -> records that used any of its outputs.
  std::vector<std::string> DownstreamRecords(
      const std::string& record_id) const;

  std::map<std::string, ProvenanceRecord> records_;
  // entity id -> records that generated it / used it.
  std::map<std::string, std::vector<std::string>> generated_by_;
  std::map<std::string, std::vector<std::string>> used_by_;
  // entity -> direct derivation sources (inputs of its generating records).
  std::map<std::string, std::set<std::string>> derived_from_;
  // entity -> entities directly derived from it.
  std::map<std::string, std::set<std::string>> derivations_;
  // Entities seen (as subject/input/output).
  std::set<std::string> entity_versions_;
  std::map<std::string, std::vector<std::string>> by_agent_;
  std::map<std::string, std::vector<std::string>> by_subject_;
  std::map<std::string, Invalidation> invalidations_;
  size_t edge_count_ = 0;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_GRAPH_H_
