// The provenance graph: a PROV-DM-style DAG (entities, activities, agents;
// used / wasGeneratedBy / wasDerivedFrom / wasAssociatedWith edges) built
// from anchored records, with the query and invalidation machinery the
// paper's §6.1 "Provenance Query" axis calls for:
//
//   * lineage (ancestor entities) and descendants,
//   * composable filtered queries (prov/query.h) executed by a planner
//     that scans only the most selective index,
//   * per-agent, per-subject, and time-range queries (thin Query wrappers),
//   * SciBlock-style timestamp invalidation with downstream cascade
//     (the Figure 4 lifecycle's "invalidate + selective re-execution").
//
// Engine layout (dense-id rewrite): every entity, agent, and record id is
// interned to a contiguous uint32_t on ingest (see prov/intern.h). All
// adjacency is stored as per-id vectors of ids — derivation edges as
// sorted, deduplicated vectors (CSR-style), subject/agent postings lists
// insertion-sorted by timestamp so history queries need no per-call sort,
// plus a global (timestamp, record) index that makes InRange O(log n + k).
// Traversals (Lineage / Descendants / Invalidate / ReexecutionSet) run BFS
// over integer adjacency with bitset visited-sets; strings are only touched
// when materializing results. The public API is unchanged and string-based.

#ifndef PROVLEDGER_PROV_GRAPH_H_
#define PROVLEDGER_PROV_GRAPH_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prov/intern.h"
#include "prov/lazy_slice.h"
#include "prov/query.h"
#include "prov/record.h"

namespace provledger {
namespace prov {

/// \brief PROV-DM node kinds.
enum class NodeKind : uint8_t { kEntity = 0, kActivity = 1, kAgent = 2 };

/// \brief PROV-DM relation kinds (activity-centric subset).
enum class RelationKind : uint8_t {
  kUsed = 0,              // activity  -> entity (input)
  kWasGeneratedBy = 1,    // entity    -> activity
  kWasDerivedFrom = 2,    // entity    -> entity
  kWasAssociatedWith = 3  // activity  -> agent
};

/// \brief An invalidation mark on a record (SciBlock's timestamp-based
/// invalidation: later consumers of the outputs become invalid too).
struct Invalidation {
  std::string record_id;
  Timestamp at = 0;
  std::string reason;
  /// True when this record was invalidated transitively via a cascade.
  bool cascaded = false;
};

/// \brief In-memory provenance DAG over anchored records.
///
/// Thread safety: NOT internally synchronized — one thread (or external
/// locking) must own all access to a *live* graph. Const query methods may
/// lazily hydrate snapshot sections and re-sort internal time indexes
/// (mutable state), so even concurrent read-only use of an arbitrary graph
/// requires external synchronization. The exception that makes concurrent
/// reads possible: after Warm() — and with no mutation afterwards — every
/// const method is a pure read, so any number of threads may query the
/// same instance concurrently. The snapshot-isolation machinery
/// (prov/snapshot.h) builds on exactly that contract; alternatively each
/// reader thread loads its own cheap lazy graph from a shared immutable
/// snapshot buffer and skips Warm() entirely.
class ProvenanceGraph {
 public:
  /// Ingest a (validated) record, creating entity/activity/agent nodes and
  /// PROV edges. Records must have unique ids. Writer-thread only.
  Status AddRecord(const ProvenanceRecord& record);
  /// Move-in overload: the pipeline commit path hands records through
  /// without another deep copy. Same semantics; `record` is consumed only
  /// on success.
  Status AddRecord(ProvenanceRecord&& record);

  bool HasRecord(const std::string& record_id) const;
  Result<ProvenanceRecord> GetRecord(const std::string& record_id) const;
  size_t record_count() const { return records_.size(); }
  size_t entity_count() const { return entities_.size(); }
  /// Distinct PROV edges: used + wasGeneratedBy + wasAssociatedWith per
  /// record, plus *deduplicated* derivation pairs — a derivation asserted
  /// by several records counts once (the pre-rewrite engine counted each
  /// assertion).
  size_t edge_count() const { return edge_count_; }

  /// \name Composable queries (§6.1 "Provenance Query").
  /// @{
  /// Execute a Query: a small planner picks the most selective index
  /// (subject/agent postings, input/output usage postings, the global
  /// timestamp index, or a full scan over it), checks the remaining
  /// predicates per candidate, and materializes matches in timestamp order
  /// (ties in ingest order; Descending() reverses). Count-only queries
  /// skip materialization entirely and, when the chosen index already
  /// guarantees every filter, skip the scan too. With Query::Parallel(n)
  /// the candidate scan fans out across the shared thread pool when the
  /// planner estimates it pays (see ShouldFanOut) — results are identical
  /// to serial execution. Safe to call concurrently from many threads only
  /// on a warmed, unmutated graph (see class comment).
  QueryResult Run(const Query& query) const;
  /// EXPLAIN: plan the query, run its candidate scan in count-only mode,
  /// and report the planner's choice — chosen index, candidate estimate at
  /// plan time vs candidates actually scanned and rows matched, plus
  /// per-phase timing. No records are materialized; limit/offset do not
  /// apply. Same thread-safety contract as Run().
  QueryExplain Explain(const Query& query) const;
  /// Zero-copy streaming overload: `visit` receives each match by const
  /// reference, in order, with offset/limit applied; returning false stops
  /// the scan early. Returns the number of records visited. The count_only
  /// modifier is ignored (visiting IS the result). The visitor must not
  /// mutate this graph (no AddRecord/Invalidate): the scan holds pointers
  /// into the index vectors, which mutation may reallocate.
  size_t Run(const Query& query,
             const std::function<bool(const ProvenanceRecord&)>& visit) const;
  /// @}

  /// \name Fixed-shape queries (thin wrappers over Run()).
  /// @{
  /// All ancestor entities `entity` transitively derives from.
  std::vector<std::string> Lineage(const std::string& entity) const;
  /// All entities transitively derived from `entity`.
  std::vector<std::string> Descendants(const std::string& entity) const;
  /// Records touching `subject`, in timestamp order.
  std::vector<ProvenanceRecord> SubjectHistory(
      const std::string& subject) const;
  /// Records performed by `agent`, in timestamp order.
  std::vector<ProvenanceRecord> ByAgent(const std::string& agent) const;
  /// Records with timestamp in [from, to], in timestamp order. Equal
  /// timestamps come back in ingest order even when records were ingested
  /// out of timestamp order: the lazy re-sort orders by (timestamp, dense
  /// record id), and dense ids are assigned in ingest order.
  std::vector<ProvenanceRecord> InRange(Timestamp from, Timestamp to) const;
  /// @}

  /// \name Planner cardinality accessors.
  /// All O(1) except InRangeCount (O(log n), and it may pay the deferred
  /// time-index sort). These are what the query planner reads to estimate
  /// selectivity; exposed for tests, benchmarks, and future sharded
  /// planning.
  /// @{
  /// Distinct agents seen so far.
  size_t agent_count() const { return agents_.size(); }
  /// Distinct entities that have appeared as a record subject.
  size_t subject_count() const { return subject_count_; }
  /// Records whose subject is `subject` (0 if unknown).
  size_t SubjectRecordCount(const std::string& subject) const;
  /// Records performed by `agent` (0 if unknown).
  size_t AgentRecordCount(const std::string& agent) const;
  /// Records that consumed `entity` as an input.
  size_t EntityUseCount(const std::string& entity) const;
  /// Records that produced `entity` (including implicit subject versions).
  size_t EntityGenerationCount(const std::string& entity) const;
  /// Records with timestamp in [from, to].
  size_t InRangeCount(Timestamp from, Timestamp to) const;
  /// @}

  /// \name Invalidation (SciBlock / Figure 4).
  /// @{
  /// Invalidate a record; every record that transitively used its outputs
  /// is cascade-invalidated. Returns the ids invalidated (including the
  /// root), in cascade order.
  Result<std::vector<std::string>> Invalidate(const std::string& record_id,
                                              Timestamp at,
                                              const std::string& reason);
  bool IsInvalidated(const std::string& record_id) const;
  Result<Invalidation> GetInvalidation(const std::string& record_id) const;
  size_t invalidated_count() const { return invalidations_.size(); }
  /// Records that would be re-executed to repair the graph after the given
  /// record's invalidation (= the cascade set minus the root).
  std::vector<std::string> ReexecutionSet(const std::string& record_id) const;
  /// @}

  /// \name Snapshot serialization (durable restart path).
  /// SaveTo dumps the engine's internal structures — intern tables,
  /// records, dense metadata, adjacency, time-sorted postings, the global
  /// time index, invalidations — so LoadFrom is pure bulk deserialization:
  /// no validation, no edge re-derivation, no re-sorting, no hashing.
  /// Derived structures hydrate lazily: records stay one encoded blob
  /// (decoded per record on first materialization), the adjacency /
  /// postings / meta-edge sections stay raw bytes until the first query
  /// path that touches them, and the intern hash maps rebuild on first
  /// lookup. A restored graph is therefore serviceable after little more
  /// than a checksum pass and a few bulk array reads — what makes snapshot
  /// restore an order of magnitude cheaper than replaying AddRecord over
  /// the chain (see bench_recovery) — and each deferred piece is paid at
  /// most once, by the first operation that needs it.
  /// @{
  void SaveTo(Encoder* enc) const;
  /// Replaces the whole graph. `backing` must be the buffer `dec` decodes
  /// (the snapshot body, already checksum-verified): deferred sections are
  /// zero-copy slices into it, pinning it until they hydrate. On error the
  /// graph is left empty, not partially loaded.
  Status LoadFrom(Decoder* dec, const std::shared_ptr<const Bytes>& backing);
  /// @}

  /// \brief Force every deferred structure into its fully-materialized,
  /// canonically-sorted form: hydrate all lazy snapshot sections, decode
  /// every lazily-encoded record, rebuild the intern hash maps, and pay
  /// every pending postings/time-index sort. Afterwards — until the next
  /// mutation — every const method on this graph is a pure read, safe to
  /// call from any number of threads concurrently, and parallel query
  /// execution (Query::Parallel) becomes eligible. Idempotent; a no-op on
  /// a graph that was never snapshot-loaded and has no pending sorts.
  void Warm();

 private:
  /// Per-record dense metadata mirrored off the full ProvenanceRecord so
  /// traversals never touch strings.
  struct RecordMeta {
    uint32_t subject = 0;
    Timestamp timestamp = 0;
    std::vector<uint32_t> inputs;
    /// Effective outputs (the subject when none are declared).
    std::vector<uint32_t> outputs;
  };

  /// Word-granular visited bitset sized for `n` ids.
  class Bitset {
   public:
    explicit Bitset(size_t n) : words_((n + 63) / 64, 0) {}
    /// Marks `id`; true when it was not yet set.
    bool TestAndSet(uint32_t id) {
      uint64_t& w = words_[id >> 6];
      uint64_t bit = uint64_t{1} << (id & 63);
      if (w & bit) return false;
      w |= bit;
      return true;
    }

   private:
    std::vector<uint64_t> words_;
  };

  /// A planned candidate scan: a slice of a time-sorted rid postings list
  /// (`list`), of the plan's own sorted `owned` buffer (`use_owned`; the
  /// plan is returned by value, so it must not point into itself), or of
  /// the global by_time_ index (neither set). [lo, hi) bounds the slice;
  /// `covers_filters` means every query predicate is already guaranteed by
  /// the index + slice, so count-only queries need no scan.
  struct QueryPlan {
    QueryIndex index = QueryIndex::kFullScan;
    const std::vector<uint32_t>* list = nullptr;
    bool use_owned = false;
    size_t lo = 0;
    size_t hi = 0;
    std::vector<uint32_t> owned;
    bool covers_filters = false;
    /// The winning index's candidate estimate when it won the selectivity
    /// contest (before time-window narrowing) — what Explain reports
    /// against the actual scan size.
    size_t estimate = 0;

    size_t size() const { return hi - lo; }
  };

  /// Pick the most selective index for `query` (estimates = candidate
  /// counts from the cardinality accessors). A filter naming an unknown
  /// subject/agent/entity yields an empty plan.
  QueryPlan PlanQuery(const Query& query) const;
  /// True when Run should fan the candidate scan out across the shared
  /// thread pool: the query asks for it, the planner's candidate estimate
  /// says the scan is big enough to amortize the thread handoff, the plan
  /// needs per-candidate predicate checks at all, and every record is
  /// already materialized (lazy snapshot records would race on hydration).
  bool ShouldFanOut(const Query& query, const QueryPlan& plan) const;
  /// Parallel candidate scan: rids of plan positions whose record passes
  /// every predicate, in ascending plan (time) order. Only called when
  /// ShouldFanOut — all state it touches is read-only by then.
  std::vector<uint32_t> ParallelMatch(const Query& query,
                                      const QueryPlan& plan) const;
  /// Narrow a time-sorted rid list to the query's [from, to] window.
  void NarrowByTime(const Query& query, const std::vector<uint32_t>& list,
                    size_t* lo, size_t* hi) const;
  /// Record id at plan position `idx` (ascending time order).
  uint32_t PlanRidAt(const QueryPlan& plan, size_t idx) const {
    if (plan.use_owned) return plan.owned[plan.lo + idx];
    return plan.list != nullptr ? (*plan.list)[plan.lo + idx]
                                : by_time_[plan.lo + idx].second;
  }
  /// Sort-on-demand for the global (timestamp, record) index.
  void EnsureGlobalTimeSorted() const;
  /// [lo, hi) slice of by_time_ covering the inclusive [from, to] window
  /// (open bounds when unset). Shared by the planner and InRangeCount so
  /// the boundary/sentinel logic lives once.
  std::pair<size_t, size_t> TimeIndexSlice(std::optional<Timestamp> from,
                                           std::optional<Timestamp> to) const;

  /// The record for `rid`, lazily decoded out of a snapshot blob on first
  /// access (plain records_ read outside the lazy window).
  const ProvenanceRecord& RecordAt(uint32_t rid) const {
    if (rid < record_ready_.size() && !record_ready_[rid]) {
      MaterializeRecord(rid);
    }
    return records_[rid];
  }
  /// Decode records_[rid] from lazy_records_blob_. The blob was CRC-gated
  /// and offset-validated at load, so failure here is a programming error;
  /// the record is left empty rather than crashing.
  void MaterializeRecord(uint32_t rid) const;

  /// \name Deferred snapshot-section hydration.
  /// Each Ensure* decodes its raw section on first touch (no-ops
  /// otherwise). Sections live under the snapshot's CRC, so a hydration
  /// decode failure is a programming error; the section loads empty then.
  /// @{
  /// generated_by_ + used_by_ (usage adjacency).
  void EnsureUsageLoaded() const;
  /// derived_from_ + derivations_ (entity derivation DAG).
  void EnsureDerivationsLoaded() const;
  /// by_subject_ + by_agent_ time-sorted postings (+ clean dirty flags).
  void EnsurePostingsLoaded() const;
  /// Per-record input/output id lists in meta_ (traversal edges).
  void EnsureMetaEdgesLoaded() const;
  /// The global (timestamp, record) index.
  void EnsureTimeIndexLoaded() const;
  /// Decode `slice` through `load`, then release it. Shared guard logic.
  static void Hydrate(LazySlice* slice,
                      const std::function<Status(Decoder*)>& load);
  /// @}

  uint32_t InternEntity(const std::string& entity);
  /// Direct downstream consumers of `rid`'s outputs, appended to `out`
  /// (deduplicated via `seen`).
  void AppendDownstream(uint32_t rid, Bitset* seen,
                        std::vector<uint32_t>* out) const;
  /// BFS closure of records downstream of `rid` (excluding `rid`), in
  /// cascade order — shared by Invalidate and ReexecutionSet so their
  /// orders always agree.
  std::vector<uint32_t> DownstreamClosure(uint32_t rid) const;
  std::vector<std::string> EntityClosure(
      const std::vector<std::vector<uint32_t>>& adjacency,
      const std::string& start) const;
  /// Append `rid` to a postings list kept in (timestamp, ingest) order;
  /// an out-of-order timestamp just flags the list dirty so ingest stays
  /// O(1) and the sort is paid once, on the next query of that list.
  void AppendByTime(std::vector<uint32_t>* postings, uint32_t rid,
                    uint8_t* dirty);
  /// Sort-on-demand counterpart of AppendByTime.
  void EnsureTimeSorted(std::vector<uint32_t>* postings,
                        uint8_t* dirty) const;

  InternTable record_ids_;
  InternTable entities_;
  InternTable agents_;
  /// Full records by dense record id (ingest order). After a snapshot
  /// load, entries below record_ready_.size() are placeholders until
  /// RecordAt materializes them from the blob (hence mutable).
  mutable std::vector<ProvenanceRecord> records_;
  /// Encoded snapshot records ([lazy_record_offsets_[i],
  /// lazy_record_offsets_[i+1]) sub-ranges); empty outside the lazy state.
  LazySlice lazy_records_;
  std::vector<uint32_t> lazy_record_offsets_;
  /// 1 = records_[i] is materialized; only covers snapshot-loaded records
  /// (records added after the load are always materialized).
  mutable std::vector<uint8_t> record_ready_;
  /// subject/timestamp are always populated; the inputs/outputs vectors of
  /// the first lazy_loaded_records_ entries hydrate from
  /// lazy_meta_edges_raw_ (hence mutable).
  mutable std::vector<RecordMeta> meta_;

  // Per-entity adjacency, indexed by entity id; mutable because the
  // snapshot sections hydrate on first touch from const query paths.
  mutable std::vector<std::vector<uint32_t>> generated_by_;  // record ids
  mutable std::vector<std::vector<uint32_t>> used_by_;       // record ids
  mutable std::vector<std::vector<uint32_t>> derived_from_;  // entity ids, sorted
  mutable std::vector<std::vector<uint32_t>> derivations_;   // entity ids, sorted

  // Raw snapshot sections awaiting hydration (empty = live state). Each
  // pins the snapshot buffer until it hydrates.
  mutable LazySlice lazy_usage_;
  mutable LazySlice lazy_derived_;
  mutable LazySlice lazy_postings_;
  mutable LazySlice lazy_meta_edges_;
  mutable LazySlice lazy_time_index_;
  /// How many leading meta_ entries the meta-edges section covers.
  size_t lazy_loaded_records_ = 0;

  // Time-ordered postings (subject / agent / global). Lists touched by an
  // out-of-order ingest carry a dirty flag and are re-sorted lazily on
  // query, hence mutable.
  mutable std::vector<std::vector<uint32_t>> by_subject_;
  mutable std::vector<uint8_t> subject_dirty_;
  mutable std::vector<std::vector<uint32_t>> by_agent_;
  mutable std::vector<uint8_t> agent_dirty_;
  // Global (timestamp, record id) index, sorted.
  mutable std::vector<std::pair<Timestamp, uint32_t>> by_time_;
  mutable uint8_t time_dirty_ = 0;

  std::unordered_map<uint32_t, Invalidation> invalidations_;
  size_t edge_count_ = 0;
  /// Distinct entities that have appeared as a subject (kept incrementally
  /// so the planner accessor stays O(1)).
  size_t subject_count_ = 0;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_GRAPH_H_
