#include "prov/snapshot.h"

namespace provledger {
namespace prov {

Result<SnapshotReader> GraphSnapshot::OpenReader() const {
  SnapshotReader reader(epoch_, chain_height_);
  // The body was produced by SaveTo on the publishing thread, so LoadFrom
  // failing here means a serialization bug, not user error — surface it
  // loudly rather than asserting so callers can fail their read cleanly.
  Decoder dec(*body_);
  PROVLEDGER_RETURN_NOT_OK(reader.graph_.LoadFrom(&dec, body_));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in graph snapshot body");
  }
  return reader;
}

}  // namespace prov
}  // namespace provledger
