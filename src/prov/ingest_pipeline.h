// Sharded, pipelined provenance ingest — the concurrency leg of the
// capture path. The single-threaded write path (Anchor/AnchorBatch) makes
// every producer wait out validation, serialization, two SHA-256 passes,
// Merkle-tree construction, and graph indexing per record; under capture
// rates like SciChain's scientific workflows or Sigwart-style IoT sensor
// fleets, that one thread is the whole system's ceiling.
//
// The pipeline splits the work by cost class:
//
//   producers ──▶ shard queues ──▶ shard workers ──▶ commit queue ──▶ committer
//   (any thread)  (bounded,        (validate,         (bounded,        (one thread:
//                  partitioned by   anonymize,         batches)         block build from
//                  interned         serialize,                          cached digests,
//                  subject id)      hash: the                           graph + index
//                                   per-record                          append, epoch
//                                   heavy lifting)                      publication)
//
// Records are partitioned across shard queues by their *interned subject
// id*, so all records of one subject flow through one shard in submission
// order — per-subject history stays in order without any cross-shard
// coordination, and the graph's time-sorted postings lists stay sorted on
// the cheap append path. Producers block only on queue backpressure, never
// on Merkle computation, fsync, or indexing. The committer is the sole
// thread touching the store/chain/graph, so those stay single-threaded
// internally (their documented contract) while the expensive per-record
// work runs concurrently on the shard workers.
//
// Readers never wait on any of this: the committer periodically publishes
// immutable graph epochs (prov/snapshot.h) that queries run against.

#ifndef PROVLEDGER_PROV_INGEST_PIPELINE_H_
#define PROVLEDGER_PROV_INGEST_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "prov/intern.h"
#include "prov/store.h"

namespace provledger {
namespace prov {

/// \brief Pipeline configuration.
struct IngestPipelineOptions {
  /// Shard queues / preparation workers. 1 still pipelines (producers
  /// overlap with preparation and commit); more shards add preparation
  /// parallelism up to the core count.
  size_t shards = 4;
  /// Records per committed block. Larger batches amortize per-block cost
  /// (header hash, Merkle tree levels, block-sink write) at the price of
  /// commit latency.
  size_t batch_size = 256;
  /// Per-shard queue capacity in records; Submit blocks (backpressure)
  /// when the target shard is full.
  size_t shard_queue_capacity = 4096;
  /// Prepared batches allowed to queue ahead of the committer.
  size_t commit_queue_capacity = 8;
  /// Publish a graph snapshot epoch after every N committed batches
  /// (0 = only on Flush/Close when publish_on_flush is set). Publication
  /// costs O(graph), so keep N coarse under heavy write load.
  size_t snapshot_every_batches = 0;
  /// Publish a fresh epoch at the end of every successful Flush()/Close().
  bool publish_on_flush = false;
  /// Sign every anchoring transaction with this key (user-direct capture);
  /// nullptr = system transactions. The key must outlive the pipeline.
  const crypto::PrivateKey* signer = nullptr;
  /// Metric registry for the stage timers, queue-depth gauges, and record
  /// outcome counters (nullptr = obs::Registry::Default()).
  obs::Registry* registry = nullptr;
};

/// \brief Multi-producer sharded ingest front-end for a ProvenanceStore.
///
/// Thread safety: Submit() is safe from any number of producer threads
/// concurrently (that is the point). Flush(), Close(), and the stats
/// accessors are also safe from any thread. The pipeline assumes it is
/// the *only* writer to the store for its lifetime: do not call the
/// store's own mutating methods (Anchor/Flush/Invalidate/...) while a
/// pipeline is attached, and do not run live store queries concurrently —
/// read through snapshots (ProvenanceStore::AcquireSnapshot) instead.
/// The store's clock must be thread-safe (SystemClock is; a test clock
/// must not be advanced mid-ingest without external coordination).
class IngestPipeline {
 public:
  /// Starts `shards` preparation workers plus one committer thread.
  /// `store` must outlive the pipeline.
  explicit IngestPipeline(ProvenanceStore* store,
                          IngestPipelineOptions options =
                              IngestPipelineOptions());
  /// Closes the pipeline (drains and joins) if Close() was not called.
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Hand a record to the pipeline. Returns quickly: the record is queued
  /// on its subject's shard and prepared/committed asynchronously —
  /// per-record failures surface through failed()/first_error(), not
  /// here. Blocks only when the shard queue is full (backpressure).
  /// FailedPrecondition after Close(). Safe from any thread.
  Status Submit(ProvenanceRecord record) PROV_EXCLUDES(partition_mu_);

  /// Bulk Submit: partitions `records` across shards and takes each shard
  /// lock once per group instead of once per record — the cheap way to
  /// feed a high-rate producer. Same per-record semantics and ordering
  /// guarantees as calling Submit in order, with one exception: if the
  /// call races Close(), records enqueued before the pipeline began
  /// stopping are accepted — they drain during Close, committing unless
  /// per-record validation/dedup drops them (surfaced via failed() /
  /// first_error(), as for any Submit) — while the
  /// rest are refused and dropped. The FailedPrecondition message reports
  /// the accepted/total split, but because records are regrouped by shard
  /// before enqueueing, the accepted subset is NOT a prefix (or any
  /// caller-determinable subset) of the input — to recover, resubmit the
  /// whole batch to a new pipeline and rely on the store's per-record-id
  /// dedup to refuse the already-committed ones. Safe from any thread.
  Status SubmitBatch(std::vector<ProvenanceRecord> records)
      PROV_EXCLUDES(partition_mu_);

  /// Wait until everything submitted before this call is either committed
  /// or counted failed, forcing partial batches through. Returns
  /// first_error() as of completion (OK when every record landed). Safe
  /// from any thread; concurrent Flush() calls serialize, and a Flush
  /// after (or racing) Close() returns Close()'s result instead of
  /// waiting on stopped workers.
  Status Flush() PROV_EXCLUDES(flush_mu_);

  /// Flush, stop every worker, and join. Idempotent; Submit() fails
  /// afterwards. Returns the final first_error(). Safe from any thread
  /// (first caller wins; the rest see the same result).
  Status Close() PROV_EXCLUDES(close_mu_, flush_mu_);

  /// \name Statistics (atomic reads; safe from any thread, monotonic).
  /// @{
  /// Records accepted by Submit().
  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  /// Records anchored on-chain and indexed.
  uint64_t committed() const { return committed_.load(std::memory_order_relaxed); }
  /// Records dropped (validation/preparation failure, duplicate id,
  /// chain refusal that survived the retry, or indexing failure after an
  /// on-chain commit).
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }
  /// Blocks appended (== prepared batches committed).
  uint64_t batches_committed() const {
    return batches_committed_.load(std::memory_order_relaxed);
  }
  /// Epoch publications performed by this pipeline (PublishSnapshot
  /// cannot currently fail; should a future publish path report an
  /// error, the attempt still counts here — Flush's publish handshake
  /// keys off this counter — and the error lands in first_error()).
  uint64_t snapshots_published() const {
    return snapshots_published_.load(std::memory_order_relaxed);
  }
  /// @}

  /// First error any stage hit since construction (OK if none). Later
  /// errors are counted in failed() but not retained. Safe from any
  /// thread.
  Status first_error() const PROV_EXCLUDES(error_mu_);

 private:
  /// A bounded MPSC record queue owned by one shard worker.
  struct Shard {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<ProvenanceRecord> queue PROV_GUARDED_BY(mu);
    std::thread worker;
  };

  /// Shard index for `subject`: interned id modulo shard count, so a
  /// subject's shard is stable for the pipeline's lifetime. Interning
  /// (vs a stateless string hash) costs one short mutex hold per
  /// Submit — SubmitBatch amortizes it — and one retained copy of each
  /// distinct subject string, and buys skew-free shard balance: dense
  /// first-seen ids deal subjects round-robin however the subject
  /// namespace clusters.
  size_t ShardFor(const std::string& subject);
  void ShardLoop(size_t shard_index);
  /// Flush with flush_mu_ already held (shared by Flush and Close).
  Status FlushLocked() PROV_REQUIRES(flush_mu_);
  void CommitterLoop();
  /// Push a prepared batch to the committer (blocks on backpressure).
  void EnqueueBatch(PreparedBatch&& batch);
  /// Record a stage failure: count `n` records failed and keep the first
  /// error status.
  void NoteFailure(size_t n, Status status);
  /// Mark `n` records fully processed and wake Flush waiters.
  void NoteProcessed(size_t n);

  ProvenanceStore* store_;
  IngestPipelineOptions options_;

  // Subject partitioning: interned subject id -> shard. Guarded; touched
  // once per Submit.
  std::mutex partition_mu_;
  InternTable subjects_ PROV_GUARDED_BY(partition_mu_);

  std::vector<std::unique_ptr<Shard>> shards_;

  // Commit queue: prepared batches in hand-off order.
  std::mutex commit_mu_;
  std::condition_variable commit_not_empty_;
  std::condition_variable commit_not_full_;
  std::deque<PreparedBatch> commit_queue_ PROV_GUARDED_BY(commit_mu_);
  std::thread committer_;

  // Lifecycle. closed_: no new Submits; stopping_: workers exit once
  // their queues drain. active_shards_ keeps the committer alive until
  // every shard worker has pushed its final partial batch.
  std::atomic<bool> closed_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> active_shards_{0};
  std::atomic<uint64_t> flush_gen_{1};
  // Lock order: close_mu_ before flush_mu_. Close() holds both across
  // the whole shutdown; joined_/close_status_ are written under both, so
  // holding either suffices to read them. (The capability annotation can
  // name only one lock — close_mu_, the outer one; Flush()'s read under
  // flush_mu_ alone is the documented exception.)
  std::mutex flush_mu_;   // serializes Flush()
  std::mutex close_mu_;   // serializes Close()
  bool joined_ PROV_GUARDED_BY(close_mu_) = false;
  Status close_status_ PROV_GUARDED_BY(close_mu_);

  // Drain accounting: processed_ == submitted_ means nothing is in
  // flight. cv guarded by drain_mu_.
  std::mutex drain_mu_;
  std::condition_variable drained_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> processed_{0};

  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> batches_committed_{0};
  std::atomic<uint64_t> snapshots_published_{0};
  std::atomic<uint64_t> nonce_;

  mutable std::mutex error_mu_;
  Status first_error_ PROV_GUARDED_BY(error_mu_);

  // Cached registry cells (resolved once in the constructor; the gauges
  // are per shard, parallel to shards_).
  obs::Histogram* prepare_seconds_;
  obs::Histogram* commit_seconds_;
  obs::Counter* committed_total_;
  obs::Counter* failed_total_;
  std::vector<obs::Gauge*> queue_depth_gauges_;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_INGEST_PIPELINE_H_
