#include "prov/capture.h"

namespace provledger {
namespace prov {

DirectCapture::DirectCapture(ProvenanceStore* store, SimClock* clock,
                             int64_t sign_cost_us)
    : store_(store), clock_(clock), sign_cost_us_(sign_cost_us) {}

void DirectCapture::RegisterUser(const std::string& user,
                                 crypto::PrivateKey key) {
  keys_.emplace(user, std::move(key));
}

Status DirectCapture::Capture(const std::string& user,
                              const ProvenanceRecord& record) {
  auto it = keys_.find(user);
  if (it == keys_.end()) {
    ++metrics_.auth_failures;
    return Status::Unauthenticated("no signing key registered for " + user);
  }
  clock_->Advance(sign_cost_us_);
  metrics_.anchor_us += sign_cost_us_;
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(record, &it->second));
  ++metrics_.records;
  return Status::OK();
}

DataStoreCapture::DataStoreCapture(ProvenanceStore* store, SimClock* clock,
                                   size_t flush_threshold,
                                   int64_t emit_cost_us)
    : store_(store),
      clock_(clock),
      flush_threshold_(flush_threshold == 0 ? 1 : flush_threshold),
      emit_cost_us_(emit_cost_us) {}

Status DataStoreCapture::Capture(const std::string& /*user*/,
                                 const ProvenanceRecord& record) {
  // The data store trusts its own operation log; no per-user auth.
  clock_->Advance(emit_cost_us_);
  metrics_.anchor_us += emit_cost_us_;
  buffer_.push_back(record);
  buffered_ = buffer_.size();
  ++metrics_.records;
  if (buffer_.size() >= flush_threshold_) return FlushBuffered();
  return Status::OK();
}

Status DataStoreCapture::FlushBuffered() {
  if (buffer_.empty()) return Status::OK();
  std::vector<ProvenanceRecord> batch = std::move(buffer_);
  buffer_.clear();
  buffered_ = 0;
  const uint64_t height_before = store_->chain()->height();
  Status anchored = store_->AnchorBatch(batch);
  if (!anchored.ok() && store_->chain()->height() == height_before) {
    // No block landed: AnchorBatch rolled its side back, so restore ours
    // too — the captured records survive for a retry instead of being
    // silently destroyed with the moved-out batch. If the height advanced,
    // the batch IS on-chain (only post-append indexing failed) and
    // re-buffering it would wedge every future flush on duplicate ids.
    buffer_ = std::move(batch);
    buffered_ = buffer_.size();
  }
  return anchored;
}

CentralizedCapture::CentralizedCapture(ProvenanceStore* store, SimClock* clock,
                                       int64_t auth_cost_us)
    : store_(store), clock_(clock), auth_cost_us_(auth_cost_us) {
  // Authority master key (deterministic in simulation).
  authority_key_ = ToBytes("capture-authority-master-key");
}

Bytes CentralizedCapture::EnrollUser(const std::string& user) {
  crypto::Digest token = crypto::HmacSha256(authority_key_, ToBytes(user));
  return Bytes(token.begin(), token.end());
}

void CentralizedCapture::PresentToken(const std::string& user,
                                      const Bytes& token) {
  presented_[user] = token;
}

Status CentralizedCapture::Capture(const std::string& user,
                                   const ProvenanceRecord& record) {
  clock_->Advance(auth_cost_us_);
  metrics_.auth_us += auth_cost_us_;

  auto it = presented_.find(user);
  crypto::Digest expected = crypto::HmacSha256(authority_key_, ToBytes(user));
  if (it == presented_.end() ||
      !ConstantTimeEqual(it->second,
                         Bytes(expected.begin(), expected.end()))) {
    ++metrics_.auth_failures;
    return Status::Unauthenticated("capability token invalid for " + user);
  }
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(record));
  ++metrics_.records;
  return Status::OK();
}

DecentralizedCapture::DecentralizedCapture(ProvenanceStore* store,
                                           SimClock* clock,
                                           uint32_t committee_size,
                                           uint32_t threshold,
                                           int64_t member_latency_us)
    : store_(store),
      clock_(clock),
      threshold_(threshold),
      member_latency_us_(member_latency_us),
      alive_members_(committee_size) {
  for (uint32_t i = 0; i < committee_size; ++i) {
    committee_.push_back(crypto::PrivateKey::FromSeed(
        "capture-committee-" + std::to_string(i)));
    committee_public_.push_back(committee_.back().public_key());
  }
}

Status DecentralizedCapture::Capture(const std::string& /*user*/,
                                     const ProvenanceRecord& record) {
  // One round trip to the committee (members answer in parallel) plus a
  // response per live member.
  clock_->Advance(2 * member_latency_us_);
  metrics_.auth_us += 2 * member_latency_us_;
  metrics_.messages += committee_.size() + alive_members_;

  const Bytes record_hash = crypto::DigestToBytes(record.Hash());
  crypto::MultiSignature multisig;
  for (uint32_t i = 0; i < alive_members_ && i < committee_.size(); ++i) {
    multisig.parts.emplace_back(committee_public_[i],
                                committee_[i].Sign(record_hash));
  }
  if (!crypto::VerifyThreshold(committee_public_, threshold_, record_hash,
                               multisig)) {
    ++metrics_.auth_failures;
    return Status::Unauthenticated(
        "committee quorum not reached for record " + record.record_id);
  }
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(record));
  ++metrics_.records;
  return Status::OK();
}

}  // namespace prov
}  // namespace provledger
