// The four provenance-capture architectures of Figure 3, as pluggable
// services in front of a ProvenanceStore:
//
//   (a) DirectCapture            — the user writes (signed) records straight
//                                  to provenance storage;
//   (b) DataStoreCapture         — the data store itself emits records as a
//                                  side effect of operations, batching them;
//   (c) CentralizedCapture       — a centralized third party authenticates
//                                  each user before anchoring on their
//                                  behalf (token check, single authority);
//   (d) DecentralizedCapture     — a committee of authenticators must
//                                  jointly approve (m-of-n signatures over
//                                  the record hash) before anchoring.
//
// Each service accounts simulated authentication/anchor latency on a
// SimClock and message counts, which bench_fig3_capture_paths compares.
//
// Thread safety: capture services are NOT internally synchronized — same
// contract as the store and chain they forward to.

#ifndef PROVLEDGER_PROV_CAPTURE_H_
#define PROVLEDGER_PROV_CAPTURE_H_

#include <memory>

#include "prov/store.h"

namespace provledger {
namespace prov {

/// \brief Per-service capture counters.
struct CaptureMetrics {
  uint64_t records = 0;
  uint64_t auth_failures = 0;
  int64_t auth_us = 0;     // simulated time spent authenticating
  int64_t anchor_us = 0;   // simulated time spent anchoring
  uint64_t messages = 0;   // protocol messages (committee path)
};

/// \brief Abstract capture path (one Figure 3 scenario each).
class CaptureService {
 public:
  virtual ~CaptureService() = default;
  virtual std::string name() const = 0;
  /// Capture one record on behalf of `user`.
  virtual Status Capture(const std::string& user,
                         const ProvenanceRecord& record) = 0;
  const CaptureMetrics& metrics() const { return metrics_; }

 protected:
  CaptureMetrics metrics_;
};

/// \brief Scenario (a): the user anchors signed records directly.
class DirectCapture : public CaptureService {
 public:
  DirectCapture(ProvenanceStore* store, SimClock* clock,
                int64_t sign_cost_us = 50);
  std::string name() const override { return "user-direct"; }
  /// Register a user's signing key.
  void RegisterUser(const std::string& user, crypto::PrivateKey key);
  Status Capture(const std::string& user,
                 const ProvenanceRecord& record) override;

 private:
  ProvenanceStore* store_;
  SimClock* clock_;
  int64_t sign_cost_us_;
  std::map<std::string, crypto::PrivateKey> keys_;
};

/// \brief Scenario (b): the data store emits records itself, batched.
class DataStoreCapture : public CaptureService {
 public:
  DataStoreCapture(ProvenanceStore* store, SimClock* clock,
                   size_t flush_threshold = 8, int64_t emit_cost_us = 5);
  std::string name() const override { return "datastore-emitted"; }
  Status Capture(const std::string& user,
                 const ProvenanceRecord& record) override;
  /// Force the buffered records out (end of an operation burst). On
  /// failure the buffer is kept intact so the flush can be retried.
  Status FlushBuffered();
  size_t buffered() const { return buffered_; }

 private:
  ProvenanceStore* store_;
  SimClock* clock_;
  size_t flush_threshold_;
  int64_t emit_cost_us_;
  size_t buffered_ = 0;
  std::vector<ProvenanceRecord> buffer_;
};

/// \brief Scenario (c): centralized third party authenticates users by
/// HMAC capability token before anchoring.
class CentralizedCapture : public CaptureService {
 public:
  CentralizedCapture(ProvenanceStore* store, SimClock* clock,
                     int64_t auth_cost_us = 300);
  std::string name() const override { return "centralized-third-party"; }
  /// Enroll a user; returns their capability token.
  Bytes EnrollUser(const std::string& user);
  /// Provide the token the user presents on capture.
  void PresentToken(const std::string& user, const Bytes& token);
  Status Capture(const std::string& user,
                 const ProvenanceRecord& record) override;

 private:
  ProvenanceStore* store_;
  SimClock* clock_;
  int64_t auth_cost_us_;
  Bytes authority_key_;
  std::map<std::string, Bytes> presented_;
};

/// \brief Scenario (d): a decentralized committee co-signs each record
/// hash (m-of-n) before it is anchored.
class DecentralizedCapture : public CaptureService {
 public:
  DecentralizedCapture(ProvenanceStore* store, SimClock* clock,
                       uint32_t committee_size = 4, uint32_t threshold = 3,
                       int64_t member_latency_us = 500);
  std::string name() const override { return "decentralized-third-party"; }
  Status Capture(const std::string& user,
                 const ProvenanceRecord& record) override;
  /// Fault injection: members beyond index `alive` stop responding.
  void SetAliveMembers(uint32_t alive) { alive_members_ = alive; }

 private:
  ProvenanceStore* store_;
  SimClock* clock_;
  uint32_t threshold_;
  int64_t member_latency_us_;
  std::vector<crypto::PrivateKey> committee_;
  std::vector<crypto::PublicKey> committee_public_;
  uint32_t alive_members_;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_CAPTURE_H_
