#include "prov/intern.h"

#include <cassert>

namespace provledger {
namespace prov {

uint32_t InternTable::Intern(const std::string& s) {
  EnsureNames();
  EnsureMap();
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(s, id);
  names_.push_back(s);
  return id;
}

uint32_t InternTable::Find(const std::string& s) const {
  EnsureNames();
  EnsureMap();
  auto it = ids_.find(s);
  return it == ids_.end() ? kNone : it->second;
}

void InternTable::EnsureNames() const {
  if (lazy_names_.empty()) return;
  LazySlice slice = std::move(lazy_names_);
  lazy_names_.clear();
  Decoder dec(slice.data(), slice.length);
  uint32_t n = 0;
  Status hydrated = [&]() -> Status {
    PROVLEDGER_RETURN_NOT_OK(dec.GetU32(&n));
    names_.assign(n, std::string());
    for (uint32_t id = 0; id < n; ++id) {
      PROVLEDGER_RETURN_NOT_OK(dec.GetString(&names_[id]));
    }
    return dec.AtEnd() ? Status::OK()
                       : Status::Corruption("trailing intern-table bytes");
  }();
  // The slice sat under the snapshot's load-time checksum; failure = bug.
  assert(hydrated.ok());
  (void)hydrated;
}

void InternTable::EnsureMap() const {
  if (map_ready_) return;
  ids_.reserve(names_.size());
  for (uint32_t id = 0; id < names_.size(); ++id) {
    ids_.emplace(names_[id], id);
  }
  map_ready_ = true;
}

void InternTable::SaveTo(Encoder* enc) const {
  if (!lazy_names_.empty()) {
    // Never materialized since its own load: the section passes through.
    enc->PutU32(static_cast<uint32_t>(lazy_names_.length));
    enc->PutRaw(lazy_names_.data(), lazy_names_.length);
    return;
  }
  Encoder payload;
  payload.PutU32(static_cast<uint32_t>(names_.size()));
  for (const auto& name : names_) payload.PutString(name);
  enc->PutU32(static_cast<uint32_t>(payload.size()));
  enc->PutRaw(payload.buffer());
}

Status InternTable::LoadFrom(Decoder* dec,
                             const std::shared_ptr<const Bytes>& backing) {
  names_.clear();
  ids_.clear();
  PROVLEDGER_RETURN_NOT_OK(GetSlice(dec, backing, &lazy_names_));
  Decoder peek(lazy_names_.data(), lazy_names_.length);
  uint32_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(peek.GetU32(&n));
  lazy_count_ = n;
  if (n == 0) lazy_names_.clear();  // nothing to hydrate later
  map_ready_ = n == 0;
  return Status::OK();
}

}  // namespace prov
}  // namespace provledger
