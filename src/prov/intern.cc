#include "prov/intern.h"

namespace provledger {
namespace prov {

uint32_t InternTable::Intern(const std::string& s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(s, id);
  names_.push_back(s);
  return id;
}

uint32_t InternTable::Find(const std::string& s) const {
  auto it = ids_.find(s);
  return it == ids_.end() ? kNone : it->second;
}

}  // namespace prov
}  // namespace provledger
