// Provenance records — the canonical on-ledger unit of provenance.
//
// A record documents one operation: who (agent) did what (operation) to
// which artifact (subject), when, deriving which outputs from which inputs.
// Domain-specific metadata lives in `fields`, whose canonical keys per
// domain reproduce Table 1 of the paper ("Provenance Record Fields"):
// product supply chain, digital forensics, and scientific collaboration
// each have a required field schema validated by Validate().
//
// Thread safety: plain value types — distinct instances are independent;
// concurrent const access to one instance is safe, any mutation needs
// external coordination.

#ifndef PROVLEDGER_PROV_RECORD_H_
#define PROVLEDGER_PROV_RECORD_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "crypto/sha256.h"

namespace provledger {
namespace prov {

/// \brief Application domain of a record (RQ1: cloud; RQ2: the five
/// collaborative domains of §4).
enum class Domain : uint8_t {
  kGeneric = 0,
  kCloud = 1,
  kSupplyChain = 2,
  kForensics = 3,
  kScientific = 4,
  kHealthcare = 5,
  kMachineLearning = 6,
};

/// Canonical lowercase name ("supply_chain", ...).
const char* DomainName(Domain domain);

/// \brief Canonical Table 1 field keys.
namespace fields {
// Product supply chain (Table 1, column 1).
inline constexpr char kProductId[] = "product_id";
inline constexpr char kBatchNumber[] = "batch_number";
inline constexpr char kMfgExpiry[] = "mfg_expiry";
inline constexpr char kTravelTrace[] = "travel_trace";
inline constexpr char kProductType[] = "product_type";
inline constexpr char kManufacturerId[] = "manufacturer_id";
inline constexpr char kQuickAccess[] = "quick_access";

// Digital forensics (Table 1, column 2).
inline constexpr char kCaseNumber[] = "case_number";
inline constexpr char kInvestigationStage[] = "investigation_stage";
inline constexpr char kCaseStartDate[] = "case_start_date";
inline constexpr char kCaseClosureDate[] = "case_closure_date";
inline constexpr char kFileTypes[] = "file_types";
inline constexpr char kAccessPatterns[] = "access_patterns";
inline constexpr char kFilesDependency[] = "files_dependency";

// Scientific collaboration (Table 1, column 3).
inline constexpr char kTaskId[] = "task_id";
inline constexpr char kWorkflowId[] = "workflow_id";
inline constexpr char kExecutionTime[] = "execution_time";
inline constexpr char kUserId[] = "user_id";
inline constexpr char kInputData[] = "input_data";
inline constexpr char kOutputData[] = "output_data";
inline constexpr char kInvalidatedResults[] = "invalidated_results";
}  // namespace fields

/// Required Table 1 field keys for a domain (empty for domains the table
/// does not cover).
const std::vector<std::string>& RequiredFields(Domain domain);

/// \brief One provenance record.
struct ProvenanceRecord {
  /// Globally unique id (caller-assigned, e.g. "rec-000042").
  std::string record_id;
  Domain domain = Domain::kGeneric;
  /// Operation name: "create", "update", "share", "transfer", "execute"...
  std::string operation;
  /// Primary artifact the operation acted on (file, product, task, case).
  std::string subject;
  /// Identity of the actor (public-key id or organizational name).
  std::string agent;
  Timestamp timestamp = 0;
  /// Entity ids consumed (PROV `used` / derivation sources).
  std::vector<std::string> inputs;
  /// Entity ids produced (PROV `wasGeneratedBy`); if empty, the operation
  /// is treated as producing a new version of `subject`.
  std::vector<std::string> outputs;
  /// Domain metadata (Table 1 keys).
  std::map<std::string, std::string> fields;
  /// Hash of the off-chain artifact content this record attests to.
  crypto::Digest payload_hash = crypto::ZeroDigest();

  /// Canonical encoding (deterministic; map keys are sorted by std::map).
  Bytes Encode() const;
  static Result<ProvenanceRecord> Decode(const Bytes& data);
  /// Streaming forms (same wire format, no per-record buffer) used when a
  /// record is embedded in a larger structure, e.g. a graph snapshot.
  void EncodeTo(Encoder* enc) const;
  static Result<ProvenanceRecord> DecodeFrom(Decoder* dec);
  /// SHA-256 of the canonical encoding.
  crypto::Digest Hash() const;

  /// Structural checks plus the Table 1 required-field schema.
  Status Validate() const;
};

/// \name Table 1 record builders (one per column).
/// @{
ProvenanceRecord MakeSupplyChainRecord(
    const std::string& record_id, const std::string& operation,
    const std::string& product_id, const std::string& agent,
    Timestamp timestamp, const std::string& batch, const std::string& expiry,
    const std::string& trace, const std::string& type,
    const std::string& manufacturer, const std::string& qr);

ProvenanceRecord MakeForensicsRecord(
    const std::string& record_id, const std::string& operation,
    const std::string& evidence_id, const std::string& agent,
    Timestamp timestamp, const std::string& case_number,
    const std::string& stage, const std::string& start_date,
    const std::string& closure_date, const std::string& file_types,
    const std::string& access_patterns, const std::string& dependency);

ProvenanceRecord MakeScientificRecord(
    const std::string& record_id, const std::string& operation,
    const std::string& task_id, const std::string& agent, Timestamp timestamp,
    const std::string& workflow_id, const std::string& execution_time,
    const std::string& user_id, const std::string& input_data,
    const std::string& output_data, const std::string& invalidated);
/// @}

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_RECORD_H_
