// Composable provenance queries (§6.1 "Provenance Query").
//
// A Query is a declarative, AND-composed filter over anchored records —
// subject, agent, domain, operation(s), time range, validity, input/output
// entity, Table 1 field equality — plus result modifiers (limit, offset,
// ascending/descending, count-only). It is a plain value type: build one
// with the fluent setters, hand it to ProvenanceGraph::Run() or
// ProvenanceStore::Execute(), reuse or copy it freely.
//
//   prov::Query q;
//   q.WithAgent("alice").Between(t0, t1).WithOperation("update").Limit(20);
//   auto page = store.Execute(q);
//
// Execution is index-backed: a small planner (see graph.cc) estimates the
// candidate count behind each applicable index — subject postings, agent
// postings, input/output usage postings, the global timestamp index — and
// scans only the most selective one, checking the remaining predicates per
// candidate. Results materialize in timestamp order (ties in ingest order),
// or stream through a visitor without copying any record. Parallel(n)
// additionally lets the executor fan a large candidate scan out across the
// shared thread pool (identical results, merged in order); against a
// published snapshot (prov/snapshot.h) the same Query runs lock-free while
// the writer keeps anchoring.

#ifndef PROVLEDGER_PROV_QUERY_H_
#define PROVLEDGER_PROV_QUERY_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "prov/record.h"

namespace provledger {
namespace prov {

/// \brief Index the planner selected for a query (introspection for tests
/// and benchmarks; callers never need to pick one themselves).
enum class QueryIndex : uint8_t {
  kSubject = 0,    // per-subject postings (time-sorted)
  kAgent = 1,      // per-agent postings (time-sorted)
  kInput = 2,      // used-by postings of the input entity
  kOutput = 3,     // generated-by postings of the output entity
  kTimeRange = 4,  // global timestamp index, binary-searched
  kFullScan = 5,   // global timestamp index, whole extent
};

/// Canonical lowercase name ("subject", "time_range", ...).
const char* QueryIndexName(QueryIndex index);

/// \brief A composable filter + modifier set over provenance records.
///
/// All filters are optional and AND-composed; an empty Query matches every
/// record. Setters return *this so they chain.
///
/// Thread safety: a Query is a plain value — distinct instances are
/// independent, and one instance may be shared across threads once no one
/// mutates it (Run()/Execute() take it by const reference and never write
/// to it).
struct Query {
  /// Sentinel for "no limit".
  static constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

  /// \name Filters.
  /// @{
  /// Exact subject entity.
  std::optional<std::string> subject;
  /// Subject prefix ("case-" matches "case-7/ev1"); composes with
  /// `subject` (exact match is checked first, then the prefix).
  std::optional<std::string> subject_prefix;
  /// Exact agent id (pass the on-chain/anonymized id in privacy mode).
  std::optional<std::string> agent;
  std::optional<Domain> domain;
  /// Operations OR-ed together (empty = any operation).
  std::vector<std::string> operations;
  /// Inclusive time range; either bound may be open.
  std::optional<Timestamp> from;
  std::optional<Timestamp> to;
  /// Validity state: true = only invalidated records, false = only valid.
  std::optional<bool> invalidated;
  /// Records that consumed this entity (PROV `used`).
  std::optional<std::string> input;
  /// Records that produced this entity (PROV `wasGeneratedBy`, including
  /// the implicit subject-version output of output-less records).
  std::optional<std::string> output;
  /// Table 1 / domain field equality, AND-composed (key -> required value).
  std::map<std::string, std::string> field_equals;
  /// @}

  /// \name Modifiers.
  /// @{
  size_t limit = kNoLimit;
  size_t offset = 0;
  /// False = ascending timestamp order (ties in ingest order).
  bool descending = false;
  /// Count matches without materializing records. Limit/offset/order are
  /// ignored; Run() returns the total match count.
  bool count_only = false;
  /// Worker fan-out for the candidate scan (1 = serial). When > 1 and the
  /// planner's candidate estimate says the scan is large enough to pay for
  /// it, the executor splits the planned range across the shared thread
  /// pool and merges matches back in order — results are identical to the
  /// serial execution. Fan-out silently degrades to serial when the scan
  /// is small, the plan already covers every filter (slice arithmetic
  /// beats threads), the query wants only a shallow page (limit/offset
  /// small relative to the scan — the serial early-exit wins), or the
  /// graph still holds lazily-materialized snapshot records (warm the
  /// reader first; see ProvenanceGraph::Warm).
  size_t parallelism = 1;
  /// @}

  /// \name Fluent setters.
  /// @{
  Query& WithSubject(std::string s) {
    subject = std::move(s);
    return *this;
  }
  Query& WithSubjectPrefix(std::string prefix) {
    subject_prefix = std::move(prefix);
    return *this;
  }
  Query& WithAgent(std::string a) {
    agent = std::move(a);
    return *this;
  }
  Query& WithDomain(Domain d) {
    domain = d;
    return *this;
  }
  /// Adds one accepted operation (repeat to OR several).
  Query& WithOperation(std::string op) {
    operations.push_back(std::move(op));
    return *this;
  }
  Query& After(Timestamp t) {
    from = t;
    return *this;
  }
  Query& Before(Timestamp t) {
    to = t;
    return *this;
  }
  /// Inclusive [range_from, range_to].
  Query& Between(Timestamp range_from, Timestamp range_to) {
    from = range_from;
    to = range_to;
    return *this;
  }
  Query& OnlyValid() {
    invalidated = false;
    return *this;
  }
  Query& OnlyInvalidated() {
    invalidated = true;
    return *this;
  }
  Query& WithInput(std::string entity) {
    input = std::move(entity);
    return *this;
  }
  Query& WithOutput(std::string entity) {
    output = std::move(entity);
    return *this;
  }
  Query& WithField(std::string key, std::string value) {
    field_equals[std::move(key)] = std::move(value);
    return *this;
  }
  Query& Limit(size_t n) {
    limit = n;
    return *this;
  }
  Query& Offset(size_t n) {
    offset = n;
    return *this;
  }
  Query& Descending() {
    descending = true;
    return *this;
  }
  Query& Ascending() {
    descending = false;
    return *this;
  }
  Query& CountOnly() {
    count_only = true;
    return *this;
  }
  /// Allow the executor to scan candidates with up to `n` workers.
  Query& Parallel(size_t n) {
    parallelism = n == 0 ? 1 : n;
    return *this;
  }
  /// @}

  /// True when the record passes every *residual* (non-index) predicate.
  /// The executor re-checks all predicates here — an index only narrows the
  /// candidate set, it never stands in for the check.
  bool Matches(const ProvenanceRecord& record, bool record_invalidated) const;
};

/// \brief Plan trace from ProvenanceGraph::Explain() / ProvenanceStore::
/// Explain(): which index the planner chose, its candidate estimate at
/// plan time vs what the scan actually visited and matched, and per-phase
/// timing. Explain executes the query in count-only mode — no records are
/// materialized and limit/offset do not apply — so rows_matched is the
/// total match count.
struct QueryExplain {
  /// The index the planner chose.
  QueryIndex index_used = QueryIndex::kFullScan;
  /// The planner's candidate estimate for the chosen index when it won
  /// the selectivity contest (before time-window narrowing).
  size_t estimated_candidates = 0;
  /// Candidates the scan actually visited (0 when covers_filters let a
  /// count-only execution skip the scan entirely).
  size_t candidates_scanned = 0;
  /// Records that passed every predicate.
  size_t rows_matched = 0;
  /// The chosen index slice alone guaranteed every filter.
  bool covers_filters = false;
  /// Time spent picking the index and narrowing the slice.
  double plan_seconds = 0;
  /// Time spent scanning candidates (0 when the scan was skipped).
  double scan_seconds = 0;

  /// One-line human form: "index=subject est=120 scanned=87 matched=12
  /// covering=no plan_us=3.1 scan_us=42.0".
  std::string ToString() const;
  /// The same fields as one JSON object.
  std::string ToJson() const;
};

/// \brief Result of a materializing Run()/Execute().
struct QueryResult {
  /// Matching records in the requested order (empty for count-only).
  std::vector<ProvenanceRecord> records;
  /// Count-only queries: total matches. Otherwise records.size().
  size_t count = 0;
  /// The index the planner chose.
  QueryIndex index_used = QueryIndex::kFullScan;
  /// Candidates the chosen index yielded (scanned, not necessarily
  /// matched) — the planner's selectivity in action.
  size_t candidates_scanned = 0;
};

}  // namespace prov
}  // namespace provledger

#endif  // PROVLEDGER_PROV_QUERY_H_
