#include "prov/columnar.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

namespace provledger {
namespace prov {
namespace columnar {

const uint8_t kBlockMagic[8] = {'P', 'L', 'C', 'O', 'L', 'B', '0', '1'};

namespace {

// Longest trailing decimal-digit run handled numerically. 18 digits always
// fit a uint64; a longer run keeps its overflow in the head string, which
// still concatenates back exactly.
constexpr size_t kMaxDigits = 18;

/// Batch-local string dictionary: interned during column building, emitted
/// (count + length-prefixed entries) ahead of the columns that reference it.
class DictBuilder {
 public:
  uint64_t Intern(const std::string& s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const uint64_t id = entries_.size();
    entries_.push_back(s);
    ids_.emplace(s, id);
    return id;
  }

  void EmitTo(Encoder* enc) const {
    enc->PutUVarint(entries_.size());
    for (const auto& s : entries_) {
      enc->PutUVarint(s.size());
      enc->PutRaw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
    }
  }

 private:
  std::vector<std::string> entries_;
  std::unordered_map<std::string, uint64_t> ids_;
};

class DictReader {
 public:
  Status ReadFrom(Decoder* dec) {
    uint64_t count = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&count));
    // Every entry costs at least its length byte, so a count past the
    // remaining bytes is corrupt before any allocation happens.
    if (count > dec->remaining()) {
      return Status::Corruption("columnar dictionary count past frame end");
    }
    entries_.reserve(static_cast<size_t>(count));
    Bytes raw;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t len = 0;
      PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&len));
      PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(static_cast<size_t>(len), &raw));
      entries_.emplace_back(raw.begin(), raw.end());
    }
    return Status::OK();
  }

  Status At(uint64_t id, const std::string** out) const {
    if (id >= entries_.size()) {
      return Status::Corruption("columnar dictionary reference out of range");
    }
    *out = &entries_[id];
    return Status::OK();
  }

 private:
  std::vector<std::string> entries_;
};

/// Head length of `s` after splitting off its trailing digit run.
size_t IdHeadLength(const std::string& s) {
  size_t head = s.size();
  while (head > 0 && s[head - 1] >= '0' && s[head - 1] <= '9') --head;
  if (s.size() - head > kMaxDigits) head = s.size() - kMaxDigits;
  return head;
}

/// One id column: dict(head) + digit width + zigzag delta of the numeric
/// suffix against the column's previous value. Ids in a batch typically
/// share the head and step the suffix, so steady state costs ~3 bytes.
class IdColumnEncoder {
 public:
  explicit IdColumnEncoder(DictBuilder* dict) : dict_(dict) {}

  void Put(Encoder* cols, const std::string& s) {
    const size_t head = IdHeadLength(s);
    const size_t width = s.size() - head;
    cols->PutUVarint(dict_->Intern(s.substr(0, head)));
    cols->PutU8(static_cast<uint8_t>(width));
    if (width == 0) return;
    uint64_t value = 0;
    for (size_t i = head; i < s.size(); ++i) {
      value = value * 10 + static_cast<uint64_t>(s[i] - '0');
    }
    cols->PutSVarint(static_cast<int64_t>(value - prev_));
    prev_ = value;
  }

 private:
  DictBuilder* dict_;
  uint64_t prev_ = 0;
};

class IdColumnDecoder {
 public:
  explicit IdColumnDecoder(const DictReader* dict) : dict_(dict) {}

  Status Get(Decoder* dec, std::string* out) {
    uint64_t head_id = 0;
    uint8_t width = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&head_id));
    const std::string* head = nullptr;
    PROVLEDGER_RETURN_NOT_OK(dict_->At(head_id, &head));
    PROVLEDGER_RETURN_NOT_OK(dec->GetU8(&width));
    if (width > kMaxDigits) {
      return Status::Corruption("columnar id digit width out of range");
    }
    *out = *head;
    if (width == 0) return Status::OK();
    int64_t delta = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetSVarint(&delta));
    const uint64_t value = prev_ + static_cast<uint64_t>(delta);
    char digits[kMaxDigits + 1];
    const int printed = std::snprintf(digits, sizeof(digits), "%0*llu",
                                      static_cast<int>(width),
                                      static_cast<unsigned long long>(value));
    if (printed != static_cast<int>(width)) {
      return Status::Corruption("columnar id suffix does not fit its width");
    }
    prev_ = value;
    out->append(digits, width);
    return Status::OK();
  }

 private:
  const DictReader* dict_;
  uint64_t prev_ = 0;
};

/// Emit every record column (in the order documented in the header) into
/// `cols`, interning strings into `dict`.
void EncodeRecordColumns(const std::vector<ProvenanceRecord>& records,
                         DictBuilder* dict, Encoder* cols) {
  IdColumnEncoder ids(dict);
  for (const auto& r : records) ids.Put(cols, r.record_id);
  for (const auto& r : records) {
    cols->PutU8(static_cast<uint8_t>(r.domain));
  }
  for (const auto& r : records) cols->PutUVarint(dict->Intern(r.operation));
  IdColumnEncoder subjects(dict);
  for (const auto& r : records) subjects.Put(cols, r.subject);
  IdColumnEncoder agents(dict);
  for (const auto& r : records) agents.Put(cols, r.agent);
  uint64_t prev_ts = 0;
  for (const auto& r : records) {
    const uint64_t ts = static_cast<uint64_t>(r.timestamp);
    cols->PutSVarint(static_cast<int64_t>(ts - prev_ts));
    prev_ts = ts;
  }
  IdColumnEncoder inputs(dict);
  for (const auto& r : records) {
    cols->PutUVarint(r.inputs.size());
    for (const auto& in : r.inputs) inputs.Put(cols, in);
  }
  IdColumnEncoder outputs(dict);
  for (const auto& r : records) {
    cols->PutUVarint(r.outputs.size());
    for (const auto& out : r.outputs) outputs.Put(cols, out);
  }
  // Field schemas: the ordered key-id list of a record's field map,
  // interned on first sight (schema ref == table size announces a new
  // schema, whose definition follows inline). IoT batches share one
  // schema, so per record only the value refs remain.
  std::vector<std::vector<uint64_t>> schemas;
  for (const auto& r : records) {
    std::vector<uint64_t> schema;
    schema.reserve(r.fields.size());
    for (const auto& [key, value] : r.fields) {
      (void)value;
      schema.push_back(dict->Intern(key));
    }
    size_t schema_id = 0;
    while (schema_id < schemas.size() && schemas[schema_id] != schema) {
      ++schema_id;
    }
    cols->PutUVarint(schema_id);
    if (schema_id == schemas.size()) {
      cols->PutUVarint(schema.size());
      for (uint64_t key_id : schema) cols->PutUVarint(key_id);
      schemas.push_back(std::move(schema));
    }
    for (const auto& [key, value] : r.fields) {
      (void)key;
      cols->PutUVarint(dict->Intern(value));
    }
  }
  for (const auto& r : records) {
    const bool zero = r.payload_hash == crypto::ZeroDigest();
    cols->PutU8(zero ? 0 : 1);
    if (!zero) cols->PutRaw(r.payload_hash.data(), r.payload_hash.size());
  }
}

Status DecodeRecordColumns(Decoder* dec, const DictReader& dict, size_t n,
                           std::vector<ProvenanceRecord>* out) {
  out->resize(n);
  std::vector<ProvenanceRecord>& recs = *out;
  IdColumnDecoder ids(&dict);
  for (auto& r : recs) PROVLEDGER_RETURN_NOT_OK(ids.Get(dec, &r.record_id));
  for (auto& r : recs) {
    uint8_t domain_byte = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetU8(&domain_byte));
    if (domain_byte > static_cast<uint8_t>(Domain::kMachineLearning)) {
      return Status::Corruption("unknown domain byte in columnar batch");
    }
    r.domain = static_cast<Domain>(domain_byte);
  }
  const std::string* s = nullptr;
  for (auto& r : recs) {
    uint64_t ref = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&ref));
    PROVLEDGER_RETURN_NOT_OK(dict.At(ref, &s));
    r.operation = *s;
  }
  IdColumnDecoder subjects(&dict);
  for (auto& r : recs) {
    PROVLEDGER_RETURN_NOT_OK(subjects.Get(dec, &r.subject));
  }
  IdColumnDecoder agents(&dict);
  for (auto& r : recs) PROVLEDGER_RETURN_NOT_OK(agents.Get(dec, &r.agent));
  uint64_t prev_ts = 0;
  for (auto& r : recs) {
    int64_t delta = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetSVarint(&delta));
    prev_ts += static_cast<uint64_t>(delta);
    r.timestamp = static_cast<Timestamp>(prev_ts);
  }
  IdColumnDecoder inputs(&dict);
  for (auto& r : recs) {
    uint64_t count = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&count));
    if (count > dec->remaining()) {
      return Status::Corruption("columnar inputs count past frame end");
    }
    r.inputs.resize(static_cast<size_t>(count));
    for (auto& in : r.inputs) PROVLEDGER_RETURN_NOT_OK(inputs.Get(dec, &in));
  }
  IdColumnDecoder outputs(&dict);
  for (auto& r : recs) {
    uint64_t count = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&count));
    if (count > dec->remaining()) {
      return Status::Corruption("columnar outputs count past frame end");
    }
    r.outputs.resize(static_cast<size_t>(count));
    for (auto& o : r.outputs) PROVLEDGER_RETURN_NOT_OK(outputs.Get(dec, &o));
  }
  std::vector<std::vector<uint64_t>> schemas;
  for (auto& r : recs) {
    uint64_t schema_id = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&schema_id));
    if (schema_id > schemas.size()) {
      return Status::Corruption("columnar schema reference out of range");
    }
    if (schema_id == schemas.size()) {
      uint64_t key_count = 0;
      PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&key_count));
      if (key_count > dec->remaining()) {
        return Status::Corruption("columnar schema key count past frame end");
      }
      std::vector<uint64_t> schema(static_cast<size_t>(key_count));
      for (auto& key_id : schema) {
        PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&key_id));
      }
      schemas.push_back(std::move(schema));
    }
    const std::string* value = nullptr;
    for (uint64_t key_id : schemas[static_cast<size_t>(schema_id)]) {
      PROVLEDGER_RETURN_NOT_OK(dict.At(key_id, &s));
      uint64_t value_ref = 0;
      PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&value_ref));
      PROVLEDGER_RETURN_NOT_OK(dict.At(value_ref, &value));
      if (!r.fields.emplace(*s, *value).second) {
        return Status::Corruption("duplicate field key in columnar schema");
      }
    }
  }
  for (auto& r : recs) {
    uint8_t flag = 0;
    PROVLEDGER_RETURN_NOT_OK(dec->GetU8(&flag));
    if (flag == 0) {
      r.payload_hash = crypto::ZeroDigest();
    } else if (flag == 1) {
      Bytes raw;
      PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(crypto::kSha256DigestSize, &raw));
      PROVLEDGER_ASSIGN_OR_RETURN(r.payload_hash,
                                  crypto::DigestFromBytes(raw));
    } else {
      return Status::Corruption("bad payload-hash flag in columnar batch");
    }
  }
  return Status::OK();
}

}  // namespace

void EncodeRecordBatch(const std::vector<ProvenanceRecord>& records,
                       Encoder* enc) {
  enc->PutUVarint(records.size());
  if (records.empty()) return;
  DictBuilder dict;
  Encoder cols;
  EncodeRecordColumns(records, &dict, &cols);
  dict.EmitTo(enc);
  enc->PutRaw(cols.buffer());
}

Bytes EncodeRecordBatch(const std::vector<ProvenanceRecord>& records) {
  Encoder enc;
  EncodeRecordBatch(records, &enc);
  return enc.TakeBuffer();
}

Status DecodeRecordBatch(Decoder* dec, std::vector<ProvenanceRecord>* out) {
  out->clear();
  uint64_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetUVarint(&n));
  if (n == 0) return Status::OK();
  // The domain column alone costs one byte per record, so any count past
  // the remaining bytes is corrupt before the resize below.
  if (n > dec->remaining()) {
    return Status::Corruption("columnar record count past frame end");
  }
  DictReader dict;
  PROVLEDGER_RETURN_NOT_OK(dict.ReadFrom(dec));
  return DecodeRecordColumns(dec, dict, static_cast<size_t>(n), out);
}

Result<std::vector<ProvenanceRecord>> DecodeRecordBatch(const Bytes& data) {
  Decoder dec(data);
  std::vector<ProvenanceRecord> records;
  PROVLEDGER_RETURN_NOT_OK(DecodeRecordBatch(&dec, &records));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after columnar record batch");
  }
  return records;
}

bool IsColumnarBlock(const Bytes& payload) {
  return payload.size() >= sizeof(kBlockMagic) &&
         std::memcmp(payload.data(), kBlockMagic, sizeof(kBlockMagic)) == 0;
}

Bytes EncodeBlock(const ledger::Block& block) {
  Encoder enc;
  enc.PutRaw(kBlockMagic, sizeof(kBlockMagic));
  block.header.EncodeTo(&enc);
  enc.PutUVarint(block.transactions.size());

  // Partition transactions: a payload that decodes to a record and
  // re-encodes to the exact same bytes goes through the record columns
  // (the canonical-form check IS the bit-identical guarantee); anything
  // else — foreign tx types, non-canonical payloads — rides along raw.
  std::vector<uint8_t> flags(block.transactions.size(), 0);
  std::vector<ProvenanceRecord> records;
  records.reserve(block.transactions.size());
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    auto rec = ProvenanceRecord::Decode(block.transactions[i].payload);
    if (rec.ok() && rec.value().Encode() == block.transactions[i].payload) {
      flags[i] = 1;
      records.push_back(std::move(rec).value());
    }
  }

  DictBuilder dict;
  Encoder cols;
  for (uint8_t flag : flags) cols.PutU8(flag);
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    if (flags[i] == 0) block.transactions[i].EncodeTo(&cols);
  }
  // Transaction columns for the record-carrying majority: type/channel are
  // dict hits, timestamps/nonces are near-monotonic deltas, and the
  // sender/signature bytes (empty for system transactions) are raw.
  uint64_t prev_ts = 0;
  uint64_t prev_nonce = 0;
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    if (flags[i] == 0) continue;
    const ledger::Transaction& tx = block.transactions[i];
    cols.PutUVarint(dict.Intern(tx.type));
    cols.PutUVarint(dict.Intern(tx.channel));
    const uint64_t ts = static_cast<uint64_t>(tx.timestamp);
    cols.PutSVarint(static_cast<int64_t>(ts - prev_ts));
    prev_ts = ts;
    cols.PutSVarint(static_cast<int64_t>(tx.nonce - prev_nonce));
    prev_nonce = tx.nonce;
    cols.PutUVarint(tx.sender.size());
    cols.PutRaw(tx.sender);
    cols.PutUVarint(tx.signature.size());
    cols.PutRaw(tx.signature);
  }
  EncodeRecordColumns(records, &dict, &cols);

  dict.EmitTo(&enc);
  enc.PutRaw(cols.buffer());
  return enc.TakeBuffer();
}

Result<ledger::Block> DecodeBlock(const Bytes& payload) {
  if (!IsColumnarBlock(payload)) return ledger::Block::Decode(payload);
  Decoder dec(payload, sizeof(kBlockMagic));
  ledger::Block block;
  PROVLEDGER_ASSIGN_OR_RETURN(block.header,
                              ledger::BlockHeader::DecodeFrom(&dec));
  uint64_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&n));
  if (n > dec.remaining()) {
    return Status::Corruption("columnar block tx count past frame end");
  }
  DictReader dict;
  PROVLEDGER_RETURN_NOT_OK(dict.ReadFrom(&dec));

  std::vector<uint8_t> flags(static_cast<size_t>(n), 0);
  size_t columnar_count = 0;
  for (auto& flag : flags) {
    PROVLEDGER_RETURN_NOT_OK(dec.GetU8(&flag));
    if (flag > 1) {
      return Status::Corruption("bad transaction flag in columnar block");
    }
    columnar_count += flag;
  }
  block.transactions.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] == 0) {
      PROVLEDGER_ASSIGN_OR_RETURN(block.transactions[i],
                                  ledger::Transaction::DecodeFrom(&dec));
    }
  }
  struct TxMeta {
    const std::string* type;
    const std::string* channel;
    Timestamp timestamp;
    uint64_t nonce;
    Bytes sender;
    Bytes signature;
  };
  std::vector<TxMeta> metas(columnar_count);
  uint64_t prev_ts = 0;
  uint64_t prev_nonce = 0;
  for (auto& meta : metas) {
    uint64_t ref = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&ref));
    PROVLEDGER_RETURN_NOT_OK(dict.At(ref, &meta.type));
    PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&ref));
    PROVLEDGER_RETURN_NOT_OK(dict.At(ref, &meta.channel));
    int64_t delta = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetSVarint(&delta));
    prev_ts += static_cast<uint64_t>(delta);
    meta.timestamp = static_cast<Timestamp>(prev_ts);
    PROVLEDGER_RETURN_NOT_OK(dec.GetSVarint(&delta));
    prev_nonce += static_cast<uint64_t>(delta);
    meta.nonce = prev_nonce;
    uint64_t len = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&len));
    PROVLEDGER_RETURN_NOT_OK(dec.GetRaw(static_cast<size_t>(len),
                                        &meta.sender));
    PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&len));
    PROVLEDGER_RETURN_NOT_OK(dec.GetRaw(static_cast<size_t>(len),
                                        &meta.signature));
  }
  std::vector<ProvenanceRecord> records;
  PROVLEDGER_RETURN_NOT_OK(
      DecodeRecordColumns(&dec, dict, columnar_count, &records));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after columnar block");
  }
  size_t next = 0;
  for (size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] == 0) continue;
    ledger::Transaction& tx = block.transactions[i];
    TxMeta& meta = metas[next];
    tx.type = *meta.type;
    tx.channel = *meta.channel;
    tx.payload = records[next].Encode();
    tx.timestamp = meta.timestamp;
    tx.nonce = meta.nonce;
    tx.sender = std::move(meta.sender);
    tx.signature = std::move(meta.signature);
    ++next;
  }
  return block;
}

}  // namespace columnar
}  // namespace prov
}  // namespace provledger
