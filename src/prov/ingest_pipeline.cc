#include "prov/ingest_pipeline.h"

#include <algorithm>

#include "crypto/merkle.h"

namespace provledger {
namespace prov {

IngestPipeline::IngestPipeline(ProvenanceStore* store,
                               IngestPipelineOptions options)
    : store_(store),
      options_(std::move(options)),
      nonce_(store->nonce()) {
  options_.shards = std::max<size_t>(1, options_.shards);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.shard_queue_capacity =
      std::max<size_t>(1, options_.shard_queue_capacity);
  options_.commit_queue_capacity =
      std::max<size_t>(1, options_.commit_queue_capacity);

  obs::Registry* registry = options_.registry != nullptr
                                ? options_.registry
                                : obs::Registry::Default();
  prepare_seconds_ = registry->GetHistogram(
      "ingest_stage_seconds", "Pipeline stage latency per drained batch",
      obs::LatencyBuckets(), {{"stage", "prepare"}});
  commit_seconds_ = registry->GetHistogram(
      "ingest_stage_seconds", "Pipeline stage latency per drained batch",
      obs::LatencyBuckets(), {{"stage", "commit"}});
  committed_total_ =
      registry->GetCounter("ingest_records_total", "Records by final outcome",
                           {{"result", "committed"}});
  failed_total_ =
      registry->GetCounter("ingest_records_total", "Records by final outcome",
                           {{"result", "failed"}});

  shards_.reserve(options_.shards);
  queue_depth_gauges_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    queue_depth_gauges_.push_back(registry->GetGauge(
        "ingest_shard_queue_depth", "Records waiting in each shard queue",
        {{"shard", std::to_string(i)}}));
  }
  active_shards_.store(options_.shards, std::memory_order_release);
  // Workers only start once every shard exists: a worker never touches a
  // sibling shard, but Submit may hash to any of them immediately.
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { ShardLoop(i); });
  }
  committer_ = std::thread([this] { CommitterLoop(); });
}

IngestPipeline::~IngestPipeline() {
  // A destructor cannot report a failed final flush — call Close()
  // yourself (the header's drain contract) to observe it; records it
  // could not commit stay refusable/dedupable in the store either way.
  (void)Close();
}

size_t IngestPipeline::ShardFor(const std::string& subject) {
  std::lock_guard<std::mutex> lock(partition_mu_);
  return subjects_.Intern(subject) % shards_.size();
}

Status IngestPipeline::Submit(ProvenanceRecord record) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ingest pipeline is closed");
  }
  const size_t shard_index = ShardFor(record.subject);
  Shard& shard = *shards_[shard_index];
  bool was_empty;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.not_full.wait(lock, [&] {
      return shard.queue.size() < options_.shard_queue_capacity ||
             stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("ingest pipeline is closed");
    }
    was_empty = shard.queue.empty();
    shard.queue.push_back(std::move(record));
    queue_depth_gauges_[shard_index]->Set(
        static_cast<int64_t>(shard.queue.size()));
  }
  // Incremented only after the record is safely enqueued, so a Flush that
  // observes this count is guaranteed to drain the record.
  submitted_.fetch_add(1, std::memory_order_release);
  // A worker never sleeps on a non-empty queue (its wait predicate), so
  // only the empty -> non-empty transition needs a wakeup.
  if (was_empty) shard.not_empty.notify_one();
  return Status::OK();
}

Status IngestPipeline::SubmitBatch(std::vector<ProvenanceRecord> records) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ingest pipeline is closed");
  }
  // Partition first (one pass over the intern table), then take each
  // shard's lock once for its whole group.
  const size_t total = records.size();
  std::vector<std::vector<ProvenanceRecord>> groups(shards_.size());
  {
    std::lock_guard<std::mutex> lock(partition_mu_);
    for (auto& record : records) {
      size_t idx = subjects_.Intern(record.subject) % shards_.size();
      groups[idx].push_back(std::move(record));
    }
  }
  size_t accepted = 0;
  for (size_t idx = 0; idx < groups.size(); ++idx) {
    auto& group = groups[idx];
    if (group.empty()) continue;
    Shard& shard = *shards_[idx];
    size_t pushed = 0;
    bool notify = false;
    while (pushed < group.size()) {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.not_full.wait(lock, [&] {
        return shard.queue.size() < options_.shard_queue_capacity ||
               stopping_.load(std::memory_order_acquire);
      });
      if (stopping_.load(std::memory_order_acquire)) {
        // Records already enqueued (this group's `pushed` plus every
        // earlier group) were accepted and will still drain during Close;
        // only the remainder is refused. Report the split so the caller
        // can account for the partial acceptance.
        return Status::FailedPrecondition(
            "ingest pipeline is closed; accepted " +
            std::to_string(accepted + pushed) + "/" +
            std::to_string(total) +
            " records before shutdown (they will still be drained; commit "
            "subject to per-record validation/dedup)");
      }
      if (shard.queue.empty()) notify = true;
      while (pushed < group.size() &&
             shard.queue.size() < options_.shard_queue_capacity) {
        shard.queue.push_back(std::move(group[pushed]));
        ++pushed;
        submitted_.fetch_add(1, std::memory_order_release);
      }
      queue_depth_gauges_[idx]->Set(static_cast<int64_t>(shard.queue.size()));
      lock.unlock();
      if (notify) {
        shard.not_empty.notify_one();
        notify = false;
      }
    }
    accepted += pushed;
  }
  return Status::OK();
}

void IngestPipeline::ShardLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<ProvenanceRecord> popped;
  std::vector<PreparedRecord> batch;
  batch.reserve(options_.batch_size);
  // Worker-local scratch buffers, reused across every record/batch this
  // shard ever prepares: the transaction-encoding scratch and the Merkle
  // leaf vector stop allocating once their steady-state capacity is hit.
  Encoder scratch;
  std::vector<crypto::Digest> leaves;
  leaves.reserve(options_.batch_size);
  // The flush baseline is the construction-time generation (1), NOT a
  // fresh load: this worker thread may first run long after construction,
  // by which time a Flush may already have bumped the generation — a
  // fresh load would swallow that flush and strand its records in the
  // partial batch while Flush waits forever.
  uint64_t seen_flush_gen = 1;

  for (;;) {
    bool push_partial = false;
    bool exiting = false;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.not_empty.wait(lock, [&] {
        return !shard.queue.empty() ||
               stopping_.load(std::memory_order_acquire) ||
               flush_gen_.load(std::memory_order_acquire) != seen_flush_gen;
      });
      const size_t want = options_.batch_size - batch.size();
      while (!shard.queue.empty() && popped.size() < want) {
        popped.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
      queue_depth_gauges_[shard_index]->Set(
          static_cast<int64_t>(shard.queue.size()));
      // Only acknowledge a flush (or exit) once the queue is fully
      // drained — the partial batch pushed below must carry everything
      // submitted before the flush.
      if (shard.queue.empty()) {
        const uint64_t gen = flush_gen_.load(std::memory_order_acquire);
        if (gen != seen_flush_gen) {
          seen_flush_gen = gen;
          push_partial = true;
        }
        if (stopping_.load(std::memory_order_acquire)) {
          push_partial = true;
          exiting = true;
        }
      }
    }
    shard.not_full.notify_all();

    // The heavy lifting — validation, anonymization, serialization, both
    // SHA-256 digests — happens here, outside every lock, concurrently
    // across shards.
    if (!popped.empty()) {
      obs::ScopedTimer prepare_timer(prepare_seconds_);
      for (auto& record : popped) {
        const uint64_t nonce =
            nonce_.fetch_add(1, std::memory_order_relaxed) + 1;
        auto prepared = store_->PrepareRecord(std::move(record), nonce,
                                              options_.signer, &scratch);
        if (!prepared.ok()) {
          NoteFailure(1, prepared.status());
          NoteProcessed(1);
          continue;
        }
        batch.push_back(std::move(prepared).value());
      }
      popped.clear();
    }

    if (batch.size() >= options_.batch_size ||
        (push_partial && !batch.empty())) {
      // Even the digest-level Merkle tree is built here, off the
      // committer thread; the committer only sequences.
      PreparedBatch prepared;
      leaves.clear();
      for (const auto& record : batch) leaves.push_back(record.leaf);
      prepared.merkle_root = crypto::MerkleTree::BuildFromDigests(leaves).root();
      prepared.records = std::move(batch);
      EnqueueBatch(std::move(prepared));
      batch.clear();
      batch.reserve(options_.batch_size);
    }
    if (exiting) break;
  }

  // Last worker out tells the committer no more batches can arrive.
  if (active_shards_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(commit_mu_);
    commit_not_empty_.notify_all();
  }
}

void IngestPipeline::EnqueueBatch(PreparedBatch&& batch) {
  {
    std::unique_lock<std::mutex> lock(commit_mu_);
    commit_not_full_.wait(lock, [&] {
      return commit_queue_.size() < options_.commit_queue_capacity ||
             stopping_.load(std::memory_order_acquire);
    });
    // On shutdown the batch is enqueued regardless: the committer drains
    // the queue completely before exiting, so nothing is lost.
    commit_queue_.push_back(std::move(batch));
  }
  commit_not_empty_.notify_one();
}

void IngestPipeline::CommitterLoop() {
  for (;;) {
    PreparedBatch batch;
    bool have_batch = false;
    {
      std::unique_lock<std::mutex> lock(commit_mu_);
      commit_not_empty_.wait(lock, [&] {
        return !commit_queue_.empty() ||
               (stopping_.load(std::memory_order_acquire) &&
                active_shards_.load(std::memory_order_acquire) == 0);
      });
      if (!commit_queue_.empty()) {
        batch = std::move(commit_queue_.front());
        commit_queue_.pop_front();
        have_batch = true;
      }
    }
    if (!have_batch) return;  // stopping, shards done, queue drained
    commit_not_full_.notify_all();

    if (batch.records.empty()) {
      // Publish marker (Flush with publish_on_flush): snapshot the graph
      // between commits, where its state is a batch boundary.
      Status published = store_->PublishSnapshot();
      if (!published.ok()) NoteFailure(0, std::move(published));
      snapshots_published_.fetch_add(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lock(drain_mu_);
      drained_.notify_all();
      continue;
    }

    const size_t batch_records = batch.records.size();
    size_t committed_records = 0;
    Status committed;
    {
      obs::ScopedTimer commit_timer(commit_seconds_);
      committed = store_->AnchorPrepared(&batch, &committed_records);
      if (!committed.ok() && !batch.records.empty()) {
        // The chain refused the block and handed the batch back (e.g. a
        // transient durability-sink error). One immediate retry covers
        // blips; a persistent fault fails the records loudly rather than
        // looping forever.
        committed = store_->AnchorPrepared(&batch, &committed_records);
      }
    }
    committed_.fetch_add(committed_records, std::memory_order_acq_rel);
    committed_total_->Increment(committed_records);
    if (!committed.ok()) {
      NoteFailure(batch_records - committed_records, std::move(committed));
    } else if (committed_records < batch_records) {
      // Rare corner: first attempt dropped duplicates AND hit a chain
      // refusal, then the retry landed — the dup error was superseded,
      // but the dropped records must still count as failed.
      NoteFailure(batch_records - committed_records,
                  Status::AlreadyExists(
                      "duplicate records dropped during retried commit"));
    }
    const uint64_t batches =
        batches_committed_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (options_.snapshot_every_batches > 0 &&
        batches % options_.snapshot_every_batches == 0) {
      Status published = store_->PublishSnapshot();
      if (!published.ok()) NoteFailure(0, std::move(published));
      snapshots_published_.fetch_add(1, std::memory_order_acq_rel);
    }
    NoteProcessed(batch_records);
  }
}

void IngestPipeline::NoteFailure(size_t n, Status status) {
  failed_.fetch_add(n, std::memory_order_acq_rel);
  failed_total_->Increment(n);
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = std::move(status);
}

void IngestPipeline::NoteProcessed(size_t n) {
  processed_.fetch_add(n, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(drain_mu_);
  drained_.notify_all();
}

Status IngestPipeline::first_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

Status IngestPipeline::Flush() {
  std::lock_guard<std::mutex> serialize(flush_mu_);
  return FlushLocked();
}

Status IngestPipeline::FlushLocked() {
  // Close() holds flush_mu_ across its entire shutdown (flush, stop,
  // join), so observing joined_ here means the committer is gone and
  // everything already drained — enqueueing a publish marker now would
  // wait on a consumer that no longer exists.
  if (joined_) return close_status_;
  const uint64_t target = submitted_.load(std::memory_order_acquire);
  flush_gen_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->not_empty.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_.wait(lock, [&] {
      return processed_.load(std::memory_order_acquire) >= target;
    });
  }
  if (options_.publish_on_flush) {
    const uint64_t before =
        snapshots_published_.load(std::memory_order_acquire);
    EnqueueBatch({});
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_.wait(lock, [&] {
      return snapshots_published_.load(std::memory_order_acquire) > before;
    });
  }
  return first_error();
}

Status IngestPipeline::Close() {
  std::lock_guard<std::mutex> serialize(close_mu_);
  if (joined_) return close_status_;
  closed_.store(true, std::memory_order_release);
  // flush_mu_ is held through stop-and-join so a concurrent Flush()
  // either completes fully before shutdown begins or starts after
  // joined_ is set and returns immediately.
  std::lock_guard<std::mutex> flush_serialize(flush_mu_);
  // Drain everything submitted before (or racing) the close.
  Status flushed = FlushLocked();

  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->not_empty.notify_all();
      shard->not_full.notify_all();
    }
  }
  for (auto& shard : shards_) shard->worker.join();
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    commit_not_empty_.notify_all();
    commit_not_full_.notify_all();
  }
  committer_.join();

  joined_ = true;
  close_status_ = flushed.ok() ? first_error() : flushed;
  return close_status_;
}

}  // namespace prov
}  // namespace provledger
