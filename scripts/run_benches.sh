#!/usr/bin/env bash
# Build Release and regenerate the benchmark JSONs:
#   BENCH_graph.json      — dense graph engine vs legacy std::map graph
#   BENCH_query.json      — planner-chosen index scans vs fetch-then-filter
#   BENCH_recovery.json   — snapshot restore vs cold RebuildFromChain
#   BENCH_concurrent.json — sharded pipeline ingest vs single-threaded
#                           AnchorBatch; query latency under write load
#   BENCH_replication.json — 4-node cluster ingest per consensus engine,
#                           replication overhead/record, catch-up vs lag
#   BENCH_encoding.json   — IoT-scale sensor ingest: columnar vs raw block
#                           bodies on disk and on the replication wire
#   BENCH_audit.json      — lineage proof size/build/verify by ancestry
#                           depth; continuous auditor vs live ingest
#
# Every BENCH_*.json carries `hardware_threads` and `timestamp_utc`
# (bench/bench_env.h), and each bench drops a metrics snapshot — the
# default obs registry's Prometheus text exposition — next to its JSON as
# BENCH_*.json.metrics.prom.
#
# Usage: scripts/run_benches.sh [record_count]   (default 100000)
set -euo pipefail
source "$(dirname "${BASH_SOURCE[0]}")/lib.sh"

BUILD="$ROOT/build-release"
RECORDS="${1:-100000}"

BENCHES=(bench_graph_scale bench_query_api bench_recovery bench_concurrent
         bench_replication bench_iot_ingest bench_audit)

configure_tree "$BUILD" Release \
  -DPROVLEDGER_BUILD_BENCHES=ON \
  -DPROVLEDGER_BUILD_TESTS=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF
TARGET_ARGS=()
for bench in "${BENCHES[@]}"; do TARGET_ARGS+=(--target "$bench"); done
build_tree "$BUILD" "${TARGET_ARGS[@]}"

# A bench that never ran must not look like a bench that passed with stale
# numbers — require_binary fails loudly on a silently skipped target.
run_bench() {
  local name="$1"; shift
  require_binary "$BUILD/$name"
  "$BUILD/$name" "$@"
}

run_bench bench_graph_scale "$ROOT/BENCH_graph.json" "$RECORDS"
run_bench bench_query_api "$ROOT/BENCH_query.json" "$RECORDS"
run_bench bench_recovery "$ROOT/BENCH_recovery.json" "$RECORDS"
run_bench bench_concurrent "$ROOT/BENCH_concurrent.json" "$RECORDS"
run_bench bench_replication "$ROOT/BENCH_replication.json" "$RECORDS"
run_bench bench_iot_ingest "$ROOT/BENCH_encoding.json" "$((RECORDS * 2))"
# Proof depths go to 1024, so keep at least a few thousand ancestors.
run_bench bench_audit "$ROOT/BENCH_audit.json" "$((RECORDS / 5))"
