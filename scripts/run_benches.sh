#!/usr/bin/env bash
# Build Release and regenerate the benchmark JSONs:
#   BENCH_graph.json    — dense graph engine vs legacy std::map graph
#   BENCH_query.json    — planner-chosen index scans vs fetch-then-filter
#   BENCH_recovery.json — snapshot restore vs cold RebuildFromChain
#
# Usage: scripts/run_benches.sh [record_count]   (default 100000)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="$ROOT/build-release"
RECORDS="${1:-100000}"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DPROVLEDGER_BUILD_BENCHES=ON \
  -DPROVLEDGER_BUILD_TESTS=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j --target bench_graph_scale --target bench_query_api \
  --target bench_recovery

"$BUILD/bench_graph_scale" "$ROOT/BENCH_graph.json" "$RECORDS"
"$BUILD/bench_query_api" "$ROOT/BENCH_query.json" "$RECORDS"
"$BUILD/bench_recovery" "$ROOT/BENCH_recovery.json" "$RECORDS"
