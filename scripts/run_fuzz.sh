#!/usr/bin/env bash
# Long-form fuzzing session over every harness in fuzz/.
#
#   * clang available -> coverage-guided libFuzzer binaries
#     (PROVLEDGER_BUILD_FUZZERS=ON) under ASan+UBSan, each run for
#     $FUZZ_SECONDS against its seed corpus, followed by corpus
#     minimization (-merge=1) back into fuzz/corpus/<name>/. New crashers
#     land in build-fuzz/artifacts/<name>/ — check them in as
#     fuzz/corpus/<name>/crash-*.bin so the regression test replays them.
#   * clang missing   -> deterministic fallback: the bounded-iteration
#     driver binaries rebuilt under ASan+UBSan and run for $FUZZ_ITERATIONS
#     mutations each (default 10x the ctest budget). No coverage feedback,
#     but the same harness bodies and sanitizers.
#
# Usage: scripts/run_fuzz.sh [harness...]   (default: all harnesses)
#   FUZZ_SECONDS=600 FUZZ_ITERATIONS=1000000 to change budgets.
set -euo pipefail
source "$(dirname "${BASH_SOURCE[0]}")/lib.sh"

FUZZ_SECONDS="${FUZZ_SECONDS:-300}"
FUZZ_ITERATIONS="${FUZZ_ITERATIONS:-1000000}"

ALL_HARNESSES=()
for src in "$ROOT"/fuzz/fuzz_*.cc; do
  name="$(basename "$src" .cc)"
  ALL_HARNESSES+=("$name")
done
if [[ $# -gt 0 ]]; then
  HARNESSES=("$@")
else
  HARNESSES=("${ALL_HARNESSES[@]}")
fi

BUILD="$ROOT/build-fuzz"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

if command -v clang++ >/dev/null 2>&1; then
  configure_tree "$BUILD" RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DPROVLEDGER_BUILD_FUZZERS=ON \
    -DPROVLEDGER_SANITIZE=address,undefined \
    -DPROVLEDGER_BUILD_TESTS=OFF \
    -DPROVLEDGER_BUILD_BENCHES=OFF \
    -DPROVLEDGER_BUILD_EXAMPLES=OFF
  build_tree "$BUILD"
  for name in "${HARNESSES[@]}"; do
    corpus="$ROOT/fuzz/corpus/${name#fuzz_}"
    bin="$BUILD/${name}_libfuzzer"
    require_binary "$bin"
    mkdir -p "$corpus" "$BUILD/artifacts/${name#fuzz_}"
    echo "=== libFuzzer: $name (${FUZZ_SECONDS}s) ==="
    "$bin" -max_total_time="$FUZZ_SECONDS" \
      -artifact_prefix="$BUILD/artifacts/${name#fuzz_}/" "$corpus"
    # Minimize: rewrite the corpus as the smallest set with equal coverage.
    tmp="$BUILD/corpus-min-${name#fuzz_}"
    rm -rf "$tmp" && mkdir -p "$tmp"
    "$bin" -merge=1 "$tmp" "$corpus"
    # Keep checked-in crash-* regression fixtures regardless of coverage.
    for crash in "$corpus"/crash-*; do
      [[ -e "$crash" ]] && cp "$crash" "$tmp/"
    done
    rm -rf "$corpus" && mv "$tmp" "$corpus"
  done
  echo "run_fuzz: OK (libFuzzer)"
  exit 0
fi

echo "run_fuzz: clang not found — deterministic driver fallback under ASan+UBSan"
configure_tree "$BUILD" RelWithDebInfo \
  -DPROVLEDGER_SANITIZE=address,undefined \
  -DPROVLEDGER_BUILD_TESTS=ON \
  -DPROVLEDGER_BUILD_BENCHES=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF
TARGET_ARGS=()
for name in "${HARNESSES[@]}"; do TARGET_ARGS+=(--target "$name"); done
build_tree "$BUILD" "${TARGET_ARGS[@]}"
for name in "${HARNESSES[@]}"; do
  bin="$BUILD/$name"
  require_binary "$bin"
  echo "=== deterministic: $name ($FUZZ_ITERATIONS iterations) ==="
  "$bin" "$ROOT/fuzz/corpus/${name#fuzz_}" "$FUZZ_ITERATIONS"
done
echo "run_fuzz: OK (deterministic)"
