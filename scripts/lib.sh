# Shared helpers for scripts/*.sh — source this, don't execute it:
#   source "$(dirname "${BASH_SOURCE[0]}")/lib.sh"
# Sourcing sets ROOT to the repository root and defines the helpers below,
# so every script configures build trees with the same flag vocabulary
# instead of hand-copying cmake invocations.

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# configure_tree <build-dir> <build-type> [extra cmake args...]
# One cmake configure with the repo as source; extra args win (last flag
# repeated takes effect), so callers can override the type defaults.
configure_tree() {
  local build="$1" type="$2"
  shift 2
  cmake -B "$build" -S "$ROOT" -DCMAKE_BUILD_TYPE="$type" "$@"
}

# build_tree <build-dir> [cmake --build args, e.g. --target foo]
build_tree() {
  local build="$1"
  shift
  cmake --build "$build" -j "$@"
}

# ctest_tree <build-dir> [ctest args, e.g. -L recovery]
ctest_tree() {
  local build="$1"
  shift
  (cd "$build" && ctest --output-on-failure "$@")
}

# require_binary <path> — fail loudly when a binary is missing (e.g. a
# cmake option silently skipped its target): a tool that never ran must not
# look like a tool that passed.
require_binary() {
  if [[ ! -x "$1" ]]; then
    echo "${BASH_SOURCE[1]##*/}: binary missing: $1" >&2
    echo "(target skipped or build failed — refusing to skip it silently)" >&2
    exit 1
  fi
}

# run_provlint <build-dir> — build the repo linter in <build-dir> and run
# both of its modes: the golden-fixture self-test (proves every rule still
# fires) and the full-tree lint (proves the tree is clean). Shared by
# run_lint.sh and check_build.sh so the two gates can never drift apart.
run_provlint() {
  local build="$1"
  build_tree "$build" --target provlint
  require_binary "$build/provlint"
  "$build/provlint" --self-test "$ROOT/tools/provlint/fixtures"
  "$build/provlint" --root "$ROOT"
}
