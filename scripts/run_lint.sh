#!/usr/bin/env bash
# Lint gate over the library sources, driven by compile_commands.json so the
# file list and include paths always match what the build actually compiles.
#
#   * clang-tidy available  -> run the checked-in .clang-tidy config
#     (bugprone-*, performance-*, concurrency-*, readability-container-*)
#     over every src/ translation unit; any diagnostic fails.
#   * clang-tidy missing    -> gcc fallback: recompile every src/ TU with
#     -fsyntax-only and a strict warning set promoted to errors. Weaker than
#     clang-tidy but runs everywhere the build runs, so the gate never
#     silently disappears on gcc-only machines.
#
# Either way, provlint (tools/provlint/) runs first: the repo-specific rules
# — thread-contract lines, justified status discards, naked new/delete,
# fuzz-harness durable I/O, common/ include hygiene — with its fixture
# self-test, so a broken rule fails before a silently-clean tree can pass.
#
# Usage: scripts/run_lint.sh [build-dir]   (default: build-check, configured
#        on demand — CMAKE_EXPORT_COMPILE_COMMANDS is on by default)
set -euo pipefail
source "$(dirname "${BASH_SOURCE[0]}")/lib.sh"

BUILD="${1:-$ROOT/build-check}"
DB="$BUILD/compile_commands.json"

if [[ ! -f "$DB" ]]; then
  configure_tree "$BUILD" RelWithDebInfo -DPROVLEDGER_BUILD_TESTS=ON
fi
if [[ ! -f "$DB" ]]; then
  echo "run_lint.sh: no compile_commands.json in $BUILD" >&2
  exit 1
fi

# Repo-specific rules first: provlint self-test + full-tree lint (lib.sh).
run_provlint "$BUILD"

# Library TUs only: tests and benches are linted by -Werror in check_build;
# the tuned check set is aimed at the production decoders and stores.
mapfile -t FILES < <(jq -r '.[].file' "$DB" | grep "/src/.*\.cc$" | sort -u)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_lint.sh: compile_commands.json lists no src/ files" >&2
  exit 1
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "run_lint.sh: clang-tidy over ${#FILES[@]} files"
  # --warnings-as-errors in .clang-tidy makes any finding fatal; -quiet
  # keeps output to actual findings.
  clang-tidy -p "$BUILD" -quiet "${FILES[@]}"
  echo "run_lint.sh: OK (clang-tidy)"
  exit 0
fi

echo "run_lint.sh: clang-tidy not found, gcc strict-warning fallback over ${#FILES[@]} files"
# The warning set mirrors the .clang-tidy intent where gcc can: lifetime and
# conversion bugs (bugprone-*), shadowing, non-virtual dtors, and the usual
# -Wall/-Wextra correctness set. -fsyntax-only skips codegen, so the whole
# tree lints in seconds even on one core.
# No -Wpedantic: crypto/u256.cc uses unsigned __int128 deliberately for
# 64x64->128 limb products, which pedantic ISO mode rejects wholesale.
# -Wunused-result is the gcc half of bugprone-unused-return-value /
# cert-err33-c: with the class-level [[nodiscard]] on Status/Result every
# unjustified discard is an error here too.
GCC_FLAGS=(
  -std=c++17 -fsyntax-only
  -Wall -Wextra
  -Wshadow -Wnon-virtual-dtor -Woverloaded-virtual
  -Wcast-qual -Wformat=2 -Wundef
  -Wpointer-arith -Wwrite-strings
  -Wunused-result
  -Werror
  -I "$ROOT/src"
)
status=0
for file in "${FILES[@]}"; do
  if ! g++ "${GCC_FLAGS[@]}" "$file"; then
    echo "run_lint.sh: findings in $file" >&2
    status=1
  fi
done
if [[ $status -ne 0 ]]; then
  echo "run_lint.sh: FAILED" >&2
  exit 1
fi
echo "run_lint.sh: OK (gcc fallback)"
