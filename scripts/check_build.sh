#!/usr/bin/env bash
# CI-style strict check, five gates in order:
#   1. build-check/    — full build (tests+benches+examples) under
#      -Wall -Wextra -Werror (PROVLEDGER_WERROR), full ctest suite, then
#      per-label passes (recovery, replication, encoding, fuzz, audit). The
#      class-level [[nodiscard]] on Status/Result makes every unjustified
#      discard a compile error here.
#   2. build-tsan/     — the `concurrency` + `encoding` + `audit` labels
#      rebuilt under -fsanitize=thread. Any data race fails the build.
#   3. build-asan/     — the FULL ctest suite rebuilt under
#      -fsanitize=address,undefined (halt_on_error): every test and every
#      deterministic fuzz harness runs with memory and UB checking on.
#   4. build-analyzer/ — the library rebuilt under gcc -fanalyzer with a
#      triaged checker set (suppression rationale below).
#   5. scripts/run_lint.sh — provlint (repo rules + fixture self-test),
#      then clang-tidy / gcc strict-warning fallback over build-check's
#      compile_commands.json.
#
# Usage: scripts/check_build.sh [extra cmake args...]
set -euo pipefail
source "$(dirname "${BASH_SOURCE[0]}")/lib.sh"

BUILD="$ROOT/build-check"
configure_tree "$BUILD" RelWithDebInfo \
  -DPROVLEDGER_WERROR=ON \
  -DPROVLEDGER_BUILD_TESTS=ON \
  -DPROVLEDGER_BUILD_BENCHES=ON \
  -DPROVLEDGER_BUILD_EXAMPLES=ON \
  "$@"
build_tree "$BUILD"
ctest_tree "$BUILD"
# Crash/restart coverage gets its own visible pass (same binaries).
ctest_tree "$BUILD" -L recovery
# Multi-node cluster convergence gets the same treatment.
ctest_tree "$BUILD" -L replication
# Columnar/varint/compression codec coverage: the bit-identical round-trip
# invariant and the versioned block frames.
ctest_tree "$BUILD" -L encoding
# Deterministic fuzz pass: corpus replay + bounded mutation loop on every
# harness (the corpus crash-* files are the decoder-bug regression suite).
ctest_tree "$BUILD" -L fuzz
# Continuous auditor + lineage proofs: tamper localization, adversarial
# proof mutations, and the auditor-vs-ingest concurrency test.
ctest_tree "$BUILD" -L audit
# Observability: metric cell semantics, the exposition goldens, EXPLAIN
# plan reporting, and provtop's registry self-test.
ctest_tree "$BUILD" -L obs
require_binary "$BUILD/provtop"
"$BUILD/provtop" --self-test

# ThreadSanitizer gate: the `concurrency` label (sharded ingest, snapshot
# readers, parallel queries) rebuilt under -fsanitize=thread. Any data
# race fails the build.
TSAN_BUILD="$ROOT/build-tsan"
configure_tree "$TSAN_BUILD" RelWithDebInfo \
  -DPROVLEDGER_SANITIZE=thread \
  -DPROVLEDGER_BUILD_TESTS=ON \
  -DPROVLEDGER_BUILD_BENCHES=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF
build_tree "$TSAN_BUILD" --target concurrency_test encoding_test \
  encoding_hardening_test audit_test obs_test
ctest_tree "$TSAN_BUILD" -L concurrency
# The encoding suite also runs under TSan: the codec is exercised from
# shard workers and the replication cluster threads.
ctest_tree "$TSAN_BUILD" -L encoding
# The audit suite too: the background auditor reads published views while
# the ingest pipeline commits — the coexistence claim must hold under TSan.
ctest_tree "$TSAN_BUILD" -L audit
# And the metric cells themselves: relaxed-atomic counters/histograms
# incremented from many threads while the exposition reads them (-R, not
# -L obs: provtop_selftest shares the label but isn't built in this tree).
ctest_tree "$TSAN_BUILD" -R obs_test

# AddressSanitizer + UndefinedBehaviorSanitizer gate: the whole suite —
# including the deterministic fuzz harnesses and the corpus regression
# replay — under memory and UB checking. halt_on_error turns any UBSan
# diagnostic into a test failure instead of a log line.
ASAN_BUILD="$ROOT/build-asan"
configure_tree "$ASAN_BUILD" RelWithDebInfo \
  -DPROVLEDGER_SANITIZE=address,undefined \
  -DPROVLEDGER_BUILD_TESTS=ON \
  -DPROVLEDGER_BUILD_BENCHES=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF
build_tree "$ASAN_BUILD"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  ctest_tree "$ASAN_BUILD"

# GCC static-analyzer gate: the library rebuilt under -fanalyzer in its own
# tree (this container is gcc-only, so this is the analyzer that actually
# runs in CI). gcc 12's analyzer is C-first and mis-models two C++
# fundamentals, so five checker families are off — every finding they
# produce here was triaged to a path inside libstdc++ internals, not our
# code:
#   * use-of-uninitialized-value  — fires inside std::string's move/SSO
#     internals for every Status factory (GCC PR analyzer/105831 class).
#   * malloc-leak                 — fires inside _Rb_tree::_M_copy and
#     friends, whose RAII cleanup the analyzer cannot see.
#   * null-dereference / possible-null-dereference — fires inside
#     vector::_M_realloc_insert and other container reallocation paths.
#   * null-argument / possible-null-argument — the analyzer models
#     libstdc++'s THROWING operator new as possibly returning NULL, then
#     propagates that impossible null into every container's buffer.
# Everything else — file-descriptor leaks, double-free, use-after-free,
# double-fclose, infinite loops, shift overflows — is live and fatal
# (PROVLEDGER_WERROR). One real finding from triage is fixed in-tree:
# Sha256::Update's empty-input overloads no longer pass a null data() to
# memcpy (UB even at length zero).
ANALYZER_BUILD="$ROOT/build-analyzer"
ANALYZER_FLAGS="-fanalyzer \
-Wno-analyzer-use-of-uninitialized-value \
-Wno-analyzer-malloc-leak \
-Wno-analyzer-null-dereference \
-Wno-analyzer-possible-null-dereference \
-Wno-analyzer-null-argument \
-Wno-analyzer-possible-null-argument"
configure_tree "$ANALYZER_BUILD" RelWithDebInfo \
  -DPROVLEDGER_WERROR=ON \
  -DPROVLEDGER_BUILD_TESTS=OFF \
  -DPROVLEDGER_BUILD_BENCHES=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="$ANALYZER_FLAGS"
build_tree "$ANALYZER_BUILD"

# Lint gate: provlint (self-test + full tree, via lib.sh run_provlint),
# then clang-tidy over compile_commands.json when available, else the gcc
# strict-warning fallback. Either way a finding fails the check.
"$ROOT/scripts/run_lint.sh" "$BUILD"

echo "check_build: OK"
