#!/usr/bin/env bash
# CI-style strict check: configure + build + run the full ctest suite in a
# dedicated build tree, with the provledger library compiled under
# -Wall -Wextra -Werror (PROVLEDGER_WERROR) at RelWithDebInfo.
#
# Usage: scripts/check_build.sh [extra cmake args...]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="$ROOT/build-check"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROVLEDGER_WERROR=ON \
  -DPROVLEDGER_BUILD_TESTS=ON \
  -DPROVLEDGER_BUILD_BENCHES=ON \
  -DPROVLEDGER_BUILD_EXAMPLES=ON \
  "$@"
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j)
# Crash/restart coverage gets its own visible pass (same binaries).
(cd "$BUILD" && ctest --output-on-failure -L recovery)
# Multi-node cluster convergence gets the same treatment.
(cd "$BUILD" && ctest --output-on-failure -L replication)
# Columnar/varint/compression codec coverage: the bit-identical round-trip
# invariant and the versioned block frames.
(cd "$BUILD" && ctest --output-on-failure -L encoding)

# ThreadSanitizer gate: the `concurrency` label (sharded ingest, snapshot
# readers, parallel queries) rebuilt under -fsanitize=thread. Any data
# race fails the build.
TSAN_BUILD="$ROOT/build-tsan"
cmake -B "$TSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROVLEDGER_SANITIZE=thread \
  -DPROVLEDGER_BUILD_TESTS=ON \
  -DPROVLEDGER_BUILD_BENCHES=OFF \
  -DPROVLEDGER_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_BUILD" -j --target concurrency_test encoding_test
(cd "$TSAN_BUILD" && ctest --output-on-failure -L concurrency)
# The encoding suite also runs under TSan: the codec is exercised from
# shard workers and the replication cluster threads.
(cd "$TSAN_BUILD" && ctest --output-on-failure -L encoding)
echo "check_build: OK"
