// Abort-on-error helper for the example walkthroughs.
//
// Examples teach the API's idiom, and the idiom is: never drop a Status.
// Real services branch on the error; a linear demo has nothing sensible to
// do on failure except stop, loudly — so every fallible call it does not
// explicitly inspect goes through Must().
//
// Thread safety: stateless free functions — safe from any thread.

#ifndef PROVLEDGER_EXAMPLES_MUST_H_
#define PROVLEDGER_EXAMPLES_MUST_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace provledger {

inline void Must(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "example: fatal status: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
void Must(const Result<T>& result) {
  Must(result.status());
}

}  // namespace provledger

#endif  // PROVLEDGER_EXAMPLES_MUST_H_
