// RQ1 scenario (ProvChain): a single user's cloud files, every operation
// anchored; an auditor verifies the whole history; on-chain identities are
// anonymized; tampering with either the ledger or the stored content is
// detected.
//
// Build & run:  ./build/examples/cloud_provenance

#include <cstdio>

#include "cloud/cloud_store.h"

#include "must.h"

using namespace provledger;  // example code; library code never does this

int main() {
  std::printf("=== Cloud storage provenance (RQ1 / ProvChain) ===\n\n");

  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStoreOptions opts;
  opts.hash_agent_ids = true;  // ProvChain privacy: anonymize users on-chain
  prov::ProvenanceStore store(&chain, &clock, opts);
  storage::ContentStore content;
  cloud::CloudStore cloud(&store, &content, &clock);
  cloud::CloudAuditor auditor(&store);

  // A user's day: create, edit, share, collaborator edits, read back.
  Must(cloud.CreateFile("alice", "thesis.tex", ToBytes("\\chapter{Intro}")));
  Must(cloud.UpdateFile("alice", "thesis.tex",
                         ToBytes("\\chapter{Intro} more text")));
  Must(cloud.ShareFile("alice", "thesis.tex", "advisor"));
  Must(cloud.UpdateFile("advisor", "thesis.tex",
                         ToBytes("\\chapter{Intro} reviewed")));
  auto denied = cloud.ReadFile("stranger", "thesis.tex");
  std::printf("stranger reads thesis.tex: %s\n",
              denied.status().ToString().c_str());

  // The file's complete history, as anchored.
  std::printf("\nhistory of thesis.tex (agents are anonymized on-chain):\n");
  for (const auto& rec : cloud.FileHistory("thesis.tex")) {
    std::printf("  v%s %-12s by %s\n", rec.fields.at("version").c_str(),
                rec.operation.c_str(), rec.agent.c_str());
  }

  // Auditor verifies everything with Merkle proofs.
  auto audit = auditor.AuditEverything();
  std::printf("\nauditor verified %zu records: OK\n", audit.value());

  // Tamper with the ledger -> the auditor notices.
  Must(chain.TamperForTesting(2, 0, 0x99));
  std::printf("after ledger tampering, audit says: %s\n",
              auditor.AuditEverything().status().ToString().c_str());

  std::printf("\nchain: %llu blocks, %zu cloud operations recorded\n",
              static_cast<unsigned long long>(chain.height()),
              cloud.operation_count());
  return 0;
}
