// Scientific-collaboration scenario (§4.1, Figure 4): a genomics-style
// pipeline executes across researchers, a bad parameter invalidates a
// mid-pipeline task, the cascade marks exactly the affected subgraph, and
// selective re-execution repairs it — all provenance on one ledger that a
// second workflow shares (SciLedger's multi-workflow model).
//
// Build & run:  ./build/examples/scientific_workflow

#include <cstdio>

#include "domains/scientific/workflow.h"

#include "must.h"

using namespace provledger;  // example code; library code never does this

int main() {
  std::printf("=== Scientific workflow provenance ===\n\n");

  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  scientific::WorkflowManager wm(&store, &clock);

  // --- Design: sequencing -> align -> {variant-call, coverage} -> report --
  Must(wm.CreateWorkflow("genome-run-7", "broad-lab"));
  Must(wm.AddTask("genome-run-7", "sequence", "basecall"));
  Must(wm.AddTask("genome-run-7", "align", "bwa-mem", {"sequence"}));
  Must(wm.Branch("genome-run-7", "variant-call", "gatk", "align"));
  Must(wm.Branch("genome-run-7", "coverage", "mosdepth", "align"));
  Must(wm.Merge("genome-run-7", "report", "multiqc",
                 {"variant-call", "coverage"}));
  std::printf("workflow designed: 5 tasks (branching + merging)\n");

  // --- Execute everything in dependency order ------------------------------
  auto executed = wm.ExecuteAll("genome-run-7", "dr-alvarez");
  std::printf("executed %zu tasks; publish: %s\n", executed.value(),
              wm.Publish("genome-run-7").ToString().c_str());

  std::printf("\nlineage of the final report:\n");
  for (const auto& ancestor : wm.OutputLineage("genome-run-7", "report")) {
    std::printf("  <- %s\n", ancestor.c_str());
  }

  // --- A reviewer finds a bad alignment parameter --------------------------
  auto invalidated =
      wm.InvalidateTask("genome-run-7", "align", "wrong reference genome");
  std::printf("\ninvalidating 'align' cascaded to %zu tasks:\n",
              invalidated->size());
  for (const auto& task : invalidated.value()) {
    std::printf("  x %s\n", task.c_str());
  }
  std::printf("'sequence' untouched: state=%d\n",
              static_cast<int>(wm.GetTask("genome-run-7", "sequence")->state));

  // --- Selective re-execution (only the affected subgraph) -----------------
  auto plan = wm.ReexecutionPlan("genome-run-7");
  std::printf("\nre-execution plan (%zu tasks, dependency order):\n",
              plan->size());
  for (const auto& task : plan.value()) {
    std::printf("  ~ %s\n", task.c_str());
    Must(wm.ReexecuteTask("genome-run-7", task, "dr-alvarez"));
  }
  std::printf("workflow republished: %s\n",
              wm.Publish("genome-run-7").ToString().c_str());

  // --- A second lab shares the ledger (multi-workflow) ---------------------
  Must(wm.CreateWorkflow("replication-study", "mit-lab"));
  Must(wm.AddTask("replication-study", "replicate", "rerun"));
  Must(wm.ExecuteTask("replication-study", "replicate", "dr-okafor"));

  std::printf("\nledger now holds %zu execution records across %zu "
              "workflows; integrity=%s\n",
              store.anchored_count(), wm.workflow_count(),
              chain.VerifyIntegrity().ToString().c_str());

  // Every record satisfies the paper's Table 1 scientific schema.
  auto history = store.SubjectHistory("align");
  std::printf("records for 'align' carry workflow/user/invalidation fields: "
              "%zu entries, first re-execution flags '%s'\n",
              history.size(),
              history.back()
                  .fields.at(prov::fields::kInvalidatedResults)
                  .c_str());
  return 0;
}
