// Cross-border digital-forensics scenario (§4.5 + RQ3; Figure 5): two
// agencies on separate blockchains run a linked investigation through the
// five forensic stages with stage-scoped permissions, share evidence across
// chains with relay-verified pointers (ForensiCross), and extract the
// combined, authenticated chain of custody at the end.
//
// Build & run:  ./build/examples/forensic_investigation

#include <cstdio>

#include "crosschain/forensicross.h"

#include "must.h"

using namespace provledger;  // example code; library code never does this

int main() {
  std::printf("=== Cross-chain forensic investigation ===\n\n");

  SimClock clock(0);
  crosschain::ForensiCross fx(&clock, /*notaries=*/4);

  // Two agencies, each with their own chain + case manager.
  struct OrgBundle {
    std::unique_ptr<ledger::Blockchain> chain;
    std::unique_ptr<prov::ProvenanceStore> store;
    std::unique_ptr<storage::ContentStore> content;
    std::unique_ptr<forensics::CaseManager> cases;
  };
  std::vector<OrgBundle> bundles;
  for (const char* name : {"agency-us", "agency-eu"}) {
    OrgBundle bundle;
    bundle.chain = std::make_unique<ledger::Blockchain>(
        ledger::ChainOptions{.chain_id = name});
    bundle.store =
        std::make_unique<prov::ProvenanceStore>(bundle.chain.get(), &clock);
    bundle.content = std::make_unique<storage::ContentStore>();
    bundle.cases = std::make_unique<forensics::CaseManager>(
        bundle.store.get(), bundle.content.get(), &clock);
    crosschain::ForensicOrg org;
    org.name = name;
    org.chain = bundle.chain.get();
    org.store = bundle.store.get();
    org.cases = bundle.cases.get();
    Must(fx.RegisterOrg(org));
    bundles.push_back(std::move(bundle));
  }

  // --- Link the case; both agencies start at identification ---------------
  Must(fx.LinkCase("case-2026-0611", "lead-harper", "2026-06-11"));
  std::printf("case linked; stage everywhere: %s\n",
              bundles[0].cases->CurrentStage("case-2026-0611")->c_str());

  // A non-unanimous advance is rejected (unanimous agreement required).
  auto partial = fx.AdvanceLinkedStage("case-2026-0611", "lead-harper", 3);
  std::printf("advance with 3/4 notaries: %s\n", partial.ToString().c_str());

  // --- Identification -> preservation -> collection ------------------------
  Must(bundles[0].cases->IdentifySource("case-2026-0611", "suspect-laptop",
                                         "inv-miller"));
  Must(fx.AdvanceLinkedStage("case-2026-0611", "lead-harper"));
  Must(fx.AdvanceLinkedStage("case-2026-0611", "lead-harper"));
  std::printf("stage now: %s\n",
              bundles[0].cases->CurrentStage("case-2026-0611")->c_str());

  // Each agency collects its own evidence.
  Must(bundles[0].cases->CollectEvidence("case-2026-0611", "laptop-image",
                                          "img", ToBytes("dd-image-bytes"),
                                          "inv-miller"));
  Must(bundles[1].cases->CollectEvidence("case-2026-0611", "router-logs",
                                          "log", ToBytes("syslog-bytes"),
                                          "inv-dubois"));

  // --- Cross-chain evidence sharing ---------------------------------------
  auto shared = fx.ShareEvidence("agency-eu", "case-2026-0611", "router-logs");
  std::printf("\nagency-eu shared router-logs; recipient verification: %s\n",
              fx.VerifySharedEvidence(shared.value()).ToString().c_str());
  auto forged = shared.value();
  forged.record.fields["note"] = "tampered in transit";
  std::printf("tampered pointer verification: %s\n",
              fx.VerifySharedEvidence(forged).ToString().c_str());

  // --- Analysis with custody transfers -------------------------------------
  Must(fx.AdvanceLinkedStage("case-2026-0611", "lead-harper"));
  Must(bundles[0].cases->TransferCustody("case-2026-0611", "laptop-image",
                                          "inv-miller", "analyst-chen"));
  auto dup = bundles[0].cases->DuplicateEvidence("case-2026-0611",
                                                 "laptop-image",
                                                 "analyst-chen");
  Must(bundles[0].cases->AnalyzeEvidence("case-2026-0611", "laptop-image",
                                          "deleted-partition-recovered",
                                          "analyst-chen"));
  std::printf("\nworking copy %s created; analysis recorded\n",
              dup->c_str());

  // --- Reporting ------------------------------------------------------------
  Must(fx.AdvanceLinkedStage("case-2026-0611", "lead-harper"));
  Must(bundles[0].cases->FileReport("case-2026-0611",
                                     "exfiltration confirmed via router-logs",
                                     "lead-harper", "2026-07-01"));

  // --- Combined authenticated provenance extraction ------------------------
  std::printf("\nchain of custody for laptop-image:\n");
  auto evidence = bundles[0].cases->GetEvidence("case-2026-0611",
                                                "laptop-image");
  for (const auto& custodian : evidence->custody_chain) {
    std::printf("  -> %s\n", custodian.c_str());
  }
  std::printf("\ncase integrity (merkle forest): %s\n",
              bundles[0].cases->VerifyEvidence("case-2026-0611",
                                               "laptop-image")
                  .ToString()
                  .c_str());

  std::printf("\nbridge relayed %zu headers; case records on both chains "
              "verified.\n",
              fx.bridge()->relayed_header_count());
  return 0;
}
