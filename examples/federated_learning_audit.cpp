// Federated-learning audit scenario (§4.4): hospitals train a shared model;
// 40% of them are poisoned. Plain FedAvg collapses, the BlockDFL-style
// pipeline (committee voting + reputation + compression) stays stable, the
// asset DAG answers "which datasets shaped this model?" for fair
// compensation, and every round is anchored for training auditability.
//
// Build & run:  ./build/examples/federated_learning_audit

#include <cstdio>

#include "domains/ml/asset_graph.h"
#include "domains/ml/federated.h"

#include "must.h"

using namespace provledger;  // example code; library code never does this

int main() {
  std::printf("=== Federated learning with provenance ===\n\n");

  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);

  // --- Asset registration (Lüthi et al.'s dataset/operation/model DAG) ----
  ml::AssetGraph assets(&store, &clock);
  Must(assets.RegisterDataset("ds-hospital-a", "hospital-a"));
  Must(assets.RegisterDataset("ds-hospital-b", "hospital-b"));
  Must(assets.RegisterDataset("ds-hospital-c", "hospital-c"));
  Must(assets.RegisterDerivedDataset("ds-harmonized", "consortium",
                                      "harmonize",
                                      {"ds-hospital-a", "ds-hospital-b"}));
  Must(assets.RegisterModel("diabetes-model-v1", "consortium", "fl-train",
                             {"ds-harmonized", "ds-hospital-c"}));
  auto contributors = assets.Contributors("diabetes-model-v1");
  std::printf("fair-compensation set for diabetes-model-v1:");
  for (const auto& org : contributors) std::printf(" %s", org.c_str());
  std::printf("\n\n");

  // --- Training under attack ----------------------------------------------
  const double kAttackers = 0.4;
  ml::FlConfig base;
  base.num_workers = 20;
  base.attacker_fraction = kAttackers;
  base.seed = 11;

  ml::FlConfig fedavg = base;
  fedavg.aggregation = ml::Aggregation::kFedAvg;
  ml::FederatedLearning undefended(fedavg, nullptr, nullptr);

  ml::FlConfig blockdfl = base;
  blockdfl.aggregation = ml::Aggregation::kBlockDfl;
  ml::FederatedLearning defended(blockdfl, &store, &clock);

  std::printf("round |  fedavg error | blockdfl error\n");
  std::printf("------+---------------+---------------\n");
  for (int round = 1; round <= 25; ++round) {
    auto u = undefended.RunRound();
    auto d = defended.RunRound();
    if (round % 5 == 0 || round == 1) {
      std::printf("%5d | %13.4f | %14.4f\n", round, u.model_error,
                  d.model_error);
    }
  }

  std::printf("\nwith %.0f%% poisoned workers: FedAvg error %.3f vs "
              "BlockDFL %.3f\n",
              kAttackers * 100, undefended.model_error(),
              defended.model_error());

  // --- Reputation has isolated the attackers -------------------------------
  size_t excluded = 0;
  for (size_t w = 0; w < blockdfl.num_workers; ++w) {
    if (defended.excluded(w)) ++excluded;
  }
  std::printf("workers excluded by reputation: %zu of %zu\n", excluded,
              blockdfl.num_workers);

  // --- Every round is on the ledger ----------------------------------------
  auto rounds = store.SubjectHistory("global-model");
  std::printf("\ntraining rounds anchored: %zu (first: accepted=%s "
              "rejected=%s)\n",
              rounds.size(), rounds.front().fields.at("accepted").c_str(),
              rounds.front().fields.at("rejected").c_str());
  std::printf("ledger integrity: %s\n",
              chain.VerifyIntegrity().ToString().c_str());
  return 0;
}
