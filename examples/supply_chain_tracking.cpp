// Pharmaceutical cold-chain scenario (§4.2 of the paper): register a
// vaccine batch, move it through manufacturer -> distributor -> pharmacy
// with confirmation-based transfers, monitor the cold chain, disclose a
// sensitive reading privately with a ZK range proof (PrivChain), pay the
// proof incentive via smart contract, authenticate a device with a PUF,
// and finally catch a counterfeit.
//
// Build & run:  ./build/examples/supply_chain_tracking

#include <cstdio>

#include "contracts/incentive.h"
#include "domains/supplychain/puf.h"
#include "domains/supplychain/supply_chain.h"

#include "must.h"

using namespace provledger;  // example code; library code never does this

int main() {
  std::printf("=== Supply-chain tracking (pharma cold chain) ===\n\n");

  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  supplychain::SupplyChain sc(&store, &clock);

  // --- Registration (only accredited manufacturers may mint ids) ---------
  sc.AccreditManufacturer("acme-pharma");
  auto bad = sc.RegisterProduct("fake-1", "vaccine", "b0", "shady-corp", "x");
  std::printf("shady-corp tries to register a product: %s\n",
              bad.ToString().c_str());
  Must(sc.RegisterProduct("vx-001", "vaccine", "batch-42", "acme-pharma",
                           "2027-12"));
  std::printf("acme-pharma registered vx-001 (batch-42)\n");

  // --- Confirmation-based custody transfer -------------------------------
  Must(sc.InitiateTransfer("vx-001", "acme-pharma", "medi-dist"));
  std::printf("transfer initiated to medi-dist; thief tries to confirm: %s\n",
              sc.ConfirmTransfer("vx-001", "thief").ToString().c_str());
  Must(sc.ConfirmTransfer("vx-001", "medi-dist"));
  Must(sc.InitiateTransfer("vx-001", "medi-dist", "city-pharmacy"));
  Must(sc.ConfirmTransfer("vx-001", "city-pharmacy"));
  std::printf("custody trace: %s\n",
              sc.GetProduct("vx-001")->trace.c_str());

  // --- Cold chain ----------------------------------------------------------
  Must(sc.SetColdChainRange("vx-001", 2, 8));
  for (int64_t reading : {4, 5, 6, 11, 5}) {
    Must(sc.RecordSensorReading("vx-001", "truck-sensor", reading));
  }
  std::printf("cold-chain alerts raised: %zu (reading=%lld outside 2..8)\n",
              sc.alerts().size(),
              static_cast<long long>(sc.alerts().empty()
                                         ? 0
                                         : sc.alerts()[0].reading));

  // --- PrivChain: prove range without revealing the reading ---------------
  auto proof_rec = sc.RecordPrivateReading("vx-001", "truck-sensor", 5, 2, 8);
  std::printf("private reading anchored as %s; verification: %s\n",
              proof_rec->c_str(),
              sc.VerifyPrivateReading(proof_rec.value()).ToString().c_str());

  // ...and the verifier pays the incentive automatically.
  contracts::ContractRuntime runtime(&clock);
  Must(runtime.Deploy(std::make_unique<contracts::IncentiveContract>(10)));
  Must(runtime.Invoke("incentive", "deposit",
                       contracts::IncentiveContract::DepositArgs("regulator",
                                                                 100),
                       "regulator"));
  Must(runtime.Invoke(
      "incentive", "record_proof",
      contracts::IncentiveContract::RecordProofArgs("truck-sensor",
                                                    proof_rec.value()),
      "regulator"));
  std::printf("incentive events: %zu (sensor operator rewarded)\n",
              runtime.event_log().size());

  // --- PUF device authentication (Islam et al.) ---------------------------
  supplychain::PufDevice sensor("truck-sensor", ToBytes("sensor-silicon"));
  supplychain::PufVerifier verifier;
  Must(verifier.Enroll(sensor, 10, /*seed=*/99));
  auto genuine = verifier.Authenticate(
      "truck-sensor", [&](const Bytes& c) { return sensor.Respond(c); });
  supplychain::PufDevice fake("truck-sensor", ToBytes("cloned-silicon"));
  auto cloned = verifier.Authenticate(
      "truck-sensor", [&](const Bytes& c) { return fake.Respond(c); });
  std::printf("PUF check: genuine=%s, clone=%s\n",
              genuine.ToString().c_str(), cloned.ToString().c_str());

  // --- Consumer-side authenticity check ------------------------------------
  std::printf("\nauthenticity at city-pharmacy: %s\n",
              sc.VerifyAuthenticity("vx-001", "city-pharmacy") ? "GENUINE"
                                                               : "SUSPECT");
  std::printf("authenticity of grey-market copy: %s\n",
              sc.VerifyAuthenticity("vx-001", "grey-market") ? "GENUINE"
                                                             : "SUSPECT");

  // --- Everything above is on one auditable ledger -------------------------
  std::printf("\nledger: %llu blocks, integrity=%s, history(vx-001)=%zu ops\n",
              static_cast<unsigned long long>(chain.height()),
              chain.VerifyIntegrity().ToString().c_str(),
              sc.History("vx-001").size());
  return 0;
}
