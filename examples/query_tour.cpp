// Query tour: the composable provenance query API end to end.
//
//   1. anchor a month of multi-agent activity on one store,
//   2. single-filter queries (subject / agent / operation / time range),
//   3. multi-predicate queries the planner serves off one index,
//   4. paging, descending order, and count-only,
//   5. zero-copy streaming with early termination,
//   6. validity filters after a SciBlock-style invalidation.
//
// Build & run:  ./build/examples/query_tour

#include <cstdio>

#include "prov/store.h"

#include "must.h"

using provledger::SimClock;
using provledger::Timestamp;
using provledger::ledger::Blockchain;
using provledger::prov::Domain;
using provledger::prov::ProvenanceRecord;
using provledger::prov::ProvenanceStore;
using provledger::prov::Query;
using provledger::prov::QueryIndexName;

namespace {
void Show(const char* title,
          const std::vector<ProvenanceRecord>& records) {
  std::printf("%s\n", title);
  for (const auto& rec : records) {
    std::printf("  [%s] t=%llu %s %s by %s\n", rec.record_id.c_str(),
                static_cast<unsigned long long>(rec.timestamp),
                rec.operation.c_str(), rec.subject.c_str(),
                rec.agent.c_str());
  }
}
}  // namespace

int main() {
  std::printf("=== ProvLedger query tour ===\n\n");

  Blockchain chain;
  SimClock clock(1'000'000);
  ProvenanceStore store(&chain, &clock);

  // 1. A small collaborative pipeline: alice curates a dataset, bob trains
  // models from it, carol audits — 30 records across 10 days.
  const char* agents[] = {"alice", "bob", "carol"};
  const char* ops[] = {"update", "train", "audit"};
  for (int i = 0; i < 30; ++i) {
    ProvenanceRecord rec;
    rec.record_id = "r" + std::to_string(i);
    rec.domain = Domain::kMachineLearning;
    rec.operation = ops[i % 3];
    rec.subject = i % 3 == 1 ? "model-" + std::to_string(i / 6) : "dataset";
    rec.agent = agents[i % 3];
    rec.timestamp = 1000 + i * 100;
    if (i % 3 == 1) {
      rec.inputs = {"dataset"};
      rec.outputs = {rec.subject + "/v" + std::to_string(i)};
    }
    Must(store.Anchor(rec));
  }
  std::printf("anchored %zu records\n\n", store.anchored_count());

  // 2. Single filters — each served off its own index.
  Show("bob's work (agent index):",
       store.Execute(Query().WithAgent("bob").Limit(3)).records);
  Show("\naudits (operation filter):",
       store.Execute(Query().WithOperation("audit").Limit(3)).records);

  // 3. Multi-predicate: agent + operation + time window. The planner picks
  // the most selective index and checks the rest per candidate.
  Query busy_week = Query()
                        .WithAgent("bob")
                        .WithOperation("train")
                        .Between(1500, 2500);
  auto result = store.Execute(busy_week);
  std::printf("\nbob's trainings in [1500, 2500]: %zu matches "
              "(index: %s, candidates scanned: %zu)\n",
              result.records.size(), QueryIndexName(result.index_used),
              result.candidates_scanned);

  // 4. Paging + count-only: size the result set without materializing it,
  // then fetch the newest page.
  size_t total =
      store.Execute(Query().WithSubject("dataset").CountOnly()).count;
  std::printf("\ndataset has %zu records; newest 3:\n", total);
  Show("", store.Execute(
               Query().WithSubject("dataset").Descending().Limit(3))
               .records);

  // 5. Zero-copy streaming: scan until the first audit after t=2000.
  std::printf("\nfirst audit after t=2000: ");
  store.Execute(Query().WithOperation("audit").After(2000),
                [](const ProvenanceRecord& rec) {
                  std::printf("%s at t=%llu\n", rec.record_id.c_str(),
                              static_cast<unsigned long long>(rec.timestamp));
                  return false;  // stop after the first match
                });

  // 6. Invalidate the first dataset update; every training that consumed
  // the dataset cascades, and validity filters split the record set.
  Must(store.mutable_graph()->Invalidate("r0", 99'000, "label leakage"));
  std::printf("\nafter invalidating r0 (cascades into the trainings):\n");
  std::printf("  still valid:  %zu\n",
              store.Execute(Query().OnlyValid().CountOnly()).count);
  std::printf("  invalidated:  %zu\n",
              store.Execute(Query().OnlyInvalidated().CountOnly()).count);

  std::printf("\nquery tour complete.\n");
  return 0;
}
