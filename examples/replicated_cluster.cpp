// Replicated cluster walkthrough: a 4-node provenance ledger in one
// process.
//
//   1. build a 4-node cluster ordered by Raft,
//   2. commit provenance batches — the elected proposer builds the block,
//      every follower re-validates and indexes it,
//   3. query any node: they all serve the same ledger locally,
//   4. partition a node away, commit more, heal, and watch anti-entropy
//      catch it up,
//   5. crash a node and restart it from its durable state (chain log +
//      snapshot), then let it sync the tail from peers.
//
// Build & run:  ./build/examples/replicated_cluster

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "replication/cluster.h"

using provledger::Status;
using provledger::crypto::DigestHex;
using provledger::network::NodeId;
using provledger::prov::ProvenanceRecord;
using provledger::replication::Cluster;
using provledger::replication::ClusterOptions;

namespace {

void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::lstat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveTree(path);
    } else {
      ::unlink(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

ProvenanceRecord MakeRecord(const std::string& id, const std::string& subject,
                            const std::string& agent,
                            provledger::Timestamp ts) {
  ProvenanceRecord rec;
  rec.record_id = id;
  rec.operation = "execute";
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  return rec;
}

void PrintHeads(Cluster* cluster, const char* label) {
  std::printf("%s\n", label);
  for (NodeId i = 0; i < cluster->size(); ++i) {
    auto* node = cluster->node(i);
    std::printf("  %s: height %llu head %s%s\n", node->name().c_str(),
                static_cast<unsigned long long>(node->height()),
                DigestHex(node->head_hash()).substr(0, 12).c_str(),
                node->alive() ? "" : "  (crashed)");
  }
}

bool Commit(Cluster* cluster, const std::string& tag, int count, int from_ts) {
  for (int i = 0; i < count; ++i) {
    Status s = cluster->Submit(MakeRecord(tag + "-" + std::to_string(i),
                                          "dataset-" + std::to_string(i % 3),
                                          "analyst-" + std::to_string(i % 2),
                                          from_ts + i));
    if (!s.ok()) return false;
  }
  return cluster->CommitPending().ok();
}

int RunDemo(const std::string& dir) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 2024;
  options.consensus = "raft";
  options.data_dir = dir;
  auto created = Cluster::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "Create: %s\n", created.status().ToString().c_str());
    return 1;
  }
  Cluster* cluster = created->get();

  // 1+2. Two committed batches: consensus orders, the proposer anchors,
  // everyone replicates.
  if (!Commit(cluster, "batch1", 6, 100) || !Commit(cluster, "batch2", 6, 200))
    return 1;
  PrintHeads(cluster, "after two batches (all heads identical):");

  // 3. Any node answers queries from its local store.
  auto* follower = cluster->node(3);
  std::printf("\nnode-3 history of dataset-1: %zu records, audit %zu ok\n",
              follower->store()->SubjectHistory("dataset-1").size(),
              follower->store()->AuditAll().value_or(0));

  // 4. Partition node 3 away; the majority keeps committing.
  cluster->Partition({{0, 1, 2}, {3}});
  if (!Commit(cluster, "during-split", 6, 300)) return 1;
  PrintHeads(cluster, "\npartitioned (node-3 lags):");
  cluster->Heal();
  cluster->AntiEntropy();
  PrintHeads(cluster, "\nhealed + anti-entropy (node-3 pulled the gap):");
  std::printf("  node-3 catch-up: %llu pull rounds, %llu blocks fetched\n",
              static_cast<unsigned long long>(follower->metrics().pulls_sent),
              static_cast<unsigned long long>(
                  follower->metrics().blocks_applied));

  // 5. Crash node 2, commit while it is down, restart from disk + sync.
  if (!cluster->SaveSnapshot(2).ok()) return 1;
  cluster->Crash(2);
  if (!Commit(cluster, "while-down", 6, 400)) return 1;
  if (!cluster->Restart(2).ok()) return 1;
  PrintHeads(cluster, "\nnode-2 restarted from chain log + snapshot:");
  std::printf("  node-2 audit after rejoin: %zu records verified\n",
              cluster->node(2)->store()->AuditAll().value_or(0));

  std::printf("\ncluster converged: %s\n",
              cluster->Converged() ? "yes" : "no");
  return cluster->Converged() ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("=== ProvLedger replicated cluster ===\n\n");

  // Durable nodes so the crash/restart leg has disk state to revive.
  std::string dir = "/tmp/provledger_cluster_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) return 1;
  int rc = RunDemo(dir);
  RemoveTree(dir);
  return rc;
}
