// Quickstart: the core ProvLedger loop in ~60 lines of API use.
//
//   1. create a blockchain + provenance store,
//   2. anchor a few provenance records (who did what to which artifact),
//   3. query history and lineage,
//   4. verify a record with a Merkle proof,
//   5. demonstrate tamper evidence.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "prov/store.h"

#include "must.h"

using provledger::SimClock;
using provledger::crypto::DigestHex;
using provledger::ledger::Blockchain;
using provledger::prov::Domain;
using provledger::prov::ProvenanceRecord;
using provledger::prov::ProvenanceStore;

namespace {
ProvenanceRecord MakeRecord(const std::string& id, const std::string& op,
                            const std::string& subject,
                            const std::string& agent,
                            std::vector<std::string> inputs,
                            provledger::Timestamp ts) {
  ProvenanceRecord rec;
  rec.record_id = id;
  rec.domain = Domain::kGeneric;
  rec.operation = op;
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  return rec;
}
}  // namespace

int main() {
  std::printf("=== ProvLedger quickstart ===\n\n");

  Blockchain chain;
  SimClock clock(1'000'000);
  ProvenanceStore store(&chain, &clock);

  // 1. Record a small data pipeline: raw.csv -> clean.csv -> report.pdf.
  Must(store.Anchor(MakeRecord("r1", "create", "raw.csv", "alice", {}, 100)));
  Must(store.Anchor(
      MakeRecord("r2", "clean", "clean.csv", "bob", {"raw.csv"}, 200)));
  Must(store.Anchor(
      MakeRecord("r3", "report", "report.pdf", "carol", {"clean.csv"}, 300)));
  std::printf("anchored %zu records across %llu blocks\n",
              store.anchored_count(),
              static_cast<unsigned long long>(chain.height()));

  // 2. Query: where did report.pdf come from?
  std::printf("\nlineage of report.pdf:\n");
  for (const auto& ancestor : store.Lineage("report.pdf")) {
    std::printf("  <- %s\n", ancestor.c_str());
  }

  // 3. Who touched clean.csv?
  std::printf("\nhistory of clean.csv:\n");
  for (const auto& rec : store.SubjectHistory("clean.csv")) {
    std::printf("  [%s] %s by %s\n", rec.record_id.c_str(),
                rec.operation.c_str(), rec.agent.c_str());
  }

  // 3b. Composable queries: filters AND together and run off the most
  // selective index (see examples/query_tour.cpp for the full surface).
  auto cleanups = store.Execute(
      provledger::prov::Query().WithOperation("clean").Between(150, 250));
  std::printf("\n'clean' operations in [150, 250]: %zu\n",
              cleanups.records.size());

  // 4. Verify record r2 cryptographically (what an auditor does).
  auto record = store.GetRecord("r2");
  auto proof = store.ProveRecord("r2");
  if (record.ok() && proof.ok() &&
      store.VerifyRecordProof(record.value(), proof.value())) {
    std::printf("\nrecord r2 verified against block %s (height %llu)\n",
                DigestHex(proof->block_hash).substr(0, 12).c_str(),
                static_cast<unsigned long long>(proof->header.height));
  }

  // 5. Tamper evidence: mutate history, watch verification break.
  Must(chain.TamperForTesting(2, 0, 0xFF));
  std::printf("\nafter tampering with block 2: chain integrity = %s\n",
              chain.VerifyIntegrity().ToString().c_str());

  std::printf("\nquickstart complete.\n");
  return 0;
}
